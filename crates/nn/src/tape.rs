//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records a DAG of operations; [`Tape::backward`] replays it in
//! reverse, producing gradients for every recorded variable. Tapes are
//! cheap, single-use objects: PrivIM's DP-SGD needs *per-subgraph* gradients
//! (Algorithm 2 clips each subgraph's gradient individually), so the
//! training loop builds one fresh tape per subgraph per iteration.
//!
//! Dense ops live here; sparse message-passing ops live in
//! [`crate::graph_ops`].

use privim_obs::ProfScope;

use crate::matrix::Matrix;
use crate::profiling::add_count;

/// Handle to a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Context handed to an op's backward function.
pub struct BackwardCtx<'a> {
    /// Upstream gradient (same shape as the op's output).
    pub grad: &'a Matrix,
    /// Values of the op's parents, in registration order.
    pub parents: Vec<&'a Matrix>,
    /// The op's own output value.
    pub output: &'a Matrix,
}

type BackwardFn = Box<dyn Fn(&BackwardCtx<'_>) -> Vec<Matrix>>;

struct Node {
    value: Matrix,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
}

/// Records a computation DAG for reverse-mode differentiation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

/// Gradients computed by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if `v` influenced the loss.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `v` (zero matrix if absent).
    pub fn take(&mut self, v: Var, shape: (usize, usize)) -> Matrix {
        self.grads
            .get_mut(v.0)
            .and_then(Option::take)
            .unwrap_or_else(|| Matrix::zeros(shape.0, shape.1))
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Records a leaf (input or parameter). Gradients flow into leaves.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Vec::new(), None)
    }

    pub(crate) fn push(
        &mut self,
        value: Matrix,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var {
        debug_assert!(value.is_finite(), "non-finite value recorded on tape");
        self.nodes.push(Node {
            value,
            parents,
            backward,
        });
        Var(self.nodes.len() - 1)
    }

    /// Runs the backward pass from scalar `loss` (must be 1×1).
    ///
    /// # Panics
    /// If `loss` is not a 1×1 variable on this tape.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::scalar(1.0));
        for i in (0..=loss.0).rev() {
            let Some(grad) = grads[i].take() else {
                continue;
            };
            let node = &self.nodes[i];
            if let Some(backward) = &node.backward {
                let ctx = BackwardCtx {
                    grad: &grad,
                    parents: node.parents.iter().map(|&p| &self.nodes[p].value).collect(),
                    output: &node.value,
                };
                let parent_grads = backward(&ctx);
                debug_assert_eq!(parent_grads.len(), node.parents.len());
                for (&p, pg) in node.parents.iter().zip(parent_grads) {
                    debug_assert_eq!(pg.shape(), self.nodes[p].value.shape());
                    match &mut grads[p] {
                        Some(acc) => acc.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            grads[i] = Some(grad);
        }
        Gradients { grads }
    }

    // ------------------------------------------------------------------
    // Elementwise / dense ops
    // ------------------------------------------------------------------

    /// `a + b` (identical shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip_map(self.value(b), |x, y| x + y);
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|ctx| vec![ctx.grad.clone(), ctx.grad.clone()])),
        )
    }

    /// `a - b` (identical shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip_map(self.value(b), |x, y| x - y);
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|ctx| vec![ctx.grad.clone(), ctx.grad.map(|g| -g)])),
        )
    }

    /// Elementwise `a ⊙ b` (identical shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip_map(self.value(b), |x, y| x * y);
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|ctx| {
                vec![
                    ctx.grad.zip_map(ctx.parents[1], |g, y| g * y),
                    ctx.grad.zip_map(ctx.parents[0], |g, x| g * x),
                ]
            })),
        )
    }

    /// `c * a` for a constant `c`.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let value = self.value(a).map(|x| c * x);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |ctx| vec![ctx.grad.map(|g| c * g)])),
        )
    }

    /// `a + c` for a constant `c` (elementwise).
    pub fn add_scalar(&mut self, a: Var, c: f64) -> Var {
        let value = self.value(a).map(|x| x + c);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|ctx| vec![ctx.grad.clone()])),
        )
    }

    /// `1 - a` (elementwise); common in the diffusion loss.
    pub fn one_minus(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 - x);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|ctx| vec![ctx.grad.map(|g| -g)])),
        )
    }

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let prof = ProfScope::enter("nn.matmul");
        let (m, k) = self.value(a).shape();
        let n = self.value(b).cols();
        let flops = (2 * m * k * n) as u64;
        // Traffic model: read A (m×k) and B (k×n) once, write C (m×n).
        let bytes = (8 * (m * k + k * n + m * n)) as u64;
        add_count("nn.flops.matmul", flops);
        prof.add_work(flops, bytes, 1);
        let value = self.value(a).matmul(self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(move |ctx| {
                let prof = ProfScope::enter("nn.matmul.bwd");
                add_count("nn.flops.matmul", 2 * flops);
                // Two products (dC·Bᵀ and Aᵀ·dC): 2× the forward flops;
                // reads dC, A, B and writes dA, dB.
                prof.add_work(2 * flops, (8 * (2 * (m * k + k * n) + m * n)) as u64, 1);
                // dA = dC·Bᵀ ; dB = Aᵀ·dC
                vec![
                    ctx.grad.matmul_nt(ctx.parents[1]),
                    ctx.parents[0].matmul_tn(ctx.grad),
                ]
            })),
        )
    }

    /// Adds a `1 × d` bias row to every row of an `n × d` matrix.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let (n, d) = self.value(a).shape();
        assert_eq!(self.value(bias).shape(), (1, d), "bias must be 1 x cols(a)");
        let bias_row = self.value(bias).row(0).to_vec();
        let mut value = self.value(a).clone();
        for r in 0..n {
            for (v, &b) in value.row_mut(r).iter_mut().zip(&bias_row) {
                *v += b;
            }
        }
        self.push(
            value,
            vec![a.0, bias.0],
            Some(Box::new(move |ctx| {
                let (n, d) = ctx.grad.shape();
                let mut db = Matrix::zeros(1, d);
                for r in 0..n {
                    for (acc, &g) in db.row_mut(0).iter_mut().zip(ctx.grad.row(r)) {
                        *acc += g;
                    }
                }
                vec![ctx.grad.clone(), db]
            })),
        )
    }

    /// Broadcast-multiplies `a` by a 1×1 variable `s` (e.g. GIN's `1 + ω`).
    pub fn scale_by_var(&mut self, a: Var, s: Var) -> Var {
        assert_eq!(
            self.value(s).shape(),
            (1, 1),
            "scale_by_var needs 1x1 scalar"
        );
        let c = self.value(s).as_scalar();
        let value = self.value(a).map(|x| c * x);
        self.push(
            value,
            vec![a.0, s.0],
            Some(Box::new(|ctx| {
                let c = ctx.parents[1].as_scalar();
                let da = ctx.grad.map(|g| c * g);
                let ds = Matrix::scalar(ctx.grad.dot(ctx.parents[0]));
                vec![da, ds]
            })),
        )
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|ctx| {
                vec![ctx
                    .grad
                    .zip_map(ctx.parents[0], |g, x| if x > 0.0 { g } else { 0.0 })]
            })),
        )
    }

    /// LeakyReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f64) -> Var {
        let value = self.value(a).map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |ctx| {
                vec![ctx
                    .grad
                    .zip_map(ctx.parents[0], |g, x| if x > 0.0 { g } else { alpha * g })]
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|ctx| {
                vec![ctx.grad.zip_map(ctx.output, |g, y| g * y * (1.0 - y))]
            })),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f64::tanh);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|ctx| {
                vec![ctx.grad.zip_map(ctx.output, |g, y| g * (1.0 - y * y))]
            })),
        )
    }

    /// Clamps into `[lo, hi]` with pass-through gradient strictly inside the
    /// interval (subgradient 0 at and beyond the bounds).
    ///
    /// Used as the paper's φ that maps the truncated-sum diffusion
    /// probability `min(1, Σ w·x)` into `[0, 1]` (Theorem 2).
    pub fn clamp(&mut self, a: Var, lo: f64, hi: f64) -> Var {
        let value = self.value(a).map(|x| x.clamp(lo, hi));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |ctx| {
                vec![ctx.grad.zip_map(
                    ctx.parents[0],
                    |g, x| {
                        if x > lo && x < hi {
                            g
                        } else {
                            0.0
                        }
                    },
                )]
            })),
        )
    }

    /// Column-wise concatenation `[a ‖ b]` (same row count).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (n, da) = self.value(a).shape();
        let (nb, db) = self.value(b).shape();
        assert_eq!(n, nb, "concat_cols row mismatch");
        let mut value = Matrix::zeros(n, da + db);
        for r in 0..n {
            value.row_mut(r)[..da].copy_from_slice(self.value(a).row(r));
            value.row_mut(r)[da..].copy_from_slice(self.value(b).row(r));
        }
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(move |ctx| {
                let n = ctx.grad.rows();
                let mut ga = Matrix::zeros(n, da);
                let mut gb = Matrix::zeros(n, db);
                for r in 0..n {
                    ga.row_mut(r).copy_from_slice(&ctx.grad.row(r)[..da]);
                    gb.row_mut(r).copy_from_slice(&ctx.grad.row(r)[da..]);
                }
                vec![ga, gb]
            })),
        )
    }

    /// Sum of all entries, as a 1×1 variable.
    pub fn sum(&mut self, a: Var) -> Var {
        let value = Matrix::scalar(self.value(a).sum());
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|ctx| {
                let g = ctx.grad.as_scalar();
                let (r, c) = ctx.parents[0].shape();
                vec![Matrix::filled(r, c, g)]
            })),
        )
    }

    /// Mean of all entries, as a 1×1 variable.
    pub fn mean(&mut self, a: Var) -> Var {
        let count = (self.value(a).rows() * self.value(a).cols()) as f64;
        let s = self.sum(a);
        self.scale(s, 1.0 / count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_gradients;

    #[test]
    fn backward_through_linear_chain() {
        // loss = sum(3 * (a + b))
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = t.leaf(Matrix::filled(2, 2, 10.0));
        let s = t.add(a, b);
        let s3 = t.scale(s, 3.0);
        let loss = t.sum(s3);
        assert_eq!(t.value(loss).as_scalar(), 3.0 * (1. + 2. + 3. + 4. + 40.));
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[3.0; 4]);
        assert_eq!(g.get(b).unwrap().data(), &[3.0; 4]);
    }

    #[test]
    fn gradient_accumulates_over_fanout() {
        // loss = sum(a + a) => da = 2
        let mut t = Tape::new();
        let a = t.leaf(Matrix::filled(1, 3, 5.0));
        let s = t.add(a, a);
        let loss = t.sum(s);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[2.0; 3]);
    }

    #[test]
    fn unreached_vars_have_no_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::scalar(1.0));
        let b = t.leaf(Matrix::scalar(2.0));
        let loss = t.scale(a, 2.0);
        let g = t.backward(loss);
        assert!(g.get(b).is_none());
        assert!(g.get(a).is_some());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_nonscalar_loss() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(2, 2));
        t.backward(a);
    }

    #[test]
    fn matmul_gradcheck() {
        check_gradients(
            &[(2, 3), (3, 4)],
            |t, vars| {
                let c = t.matmul(vars[0], vars[1]);
                t.sum(c)
            },
            1e-6,
        );
    }

    #[test]
    fn mul_sub_gradcheck() {
        check_gradients(
            &[(2, 2), (2, 2)],
            |t, vars| {
                let d = t.sub(vars[0], vars[1]);
                let m = t.mul(d, vars[0]);
                t.sum(m)
            },
            1e-6,
        );
    }

    #[test]
    fn activations_gradcheck() {
        for act in 0..4 {
            check_gradients(
                &[(3, 3)],
                move |t, vars| {
                    let y = match act {
                        0 => t.sigmoid(vars[0]),
                        1 => t.tanh(vars[0]),
                        2 => t.leaky_relu(vars[0], 0.2),
                        _ => {
                            let s = t.sigmoid(vars[0]); // keep strictly inside (0,1)
                            t.clamp(s, 0.0, 1.0)
                        }
                    };
                    t.sum(y)
                },
                1e-5,
            );
        }
    }

    #[test]
    fn bias_broadcast_gradcheck() {
        check_gradients(
            &[(4, 3), (1, 3)],
            |t, vars| {
                let y = t.add_row_broadcast(vars[0], vars[1]);
                let y = t.tanh(y);
                t.sum(y)
            },
            1e-6,
        );
    }

    #[test]
    fn concat_and_scalar_ops_gradcheck() {
        check_gradients(
            &[(3, 2), (3, 2), (1, 1)],
            |t, vars| {
                let c = t.concat_cols(vars[0], vars[1]);
                let s = t.scale_by_var(c, vars[2]);
                let s = t.add_scalar(s, 0.5);
                let om = t.one_minus(s);
                t.mean(om)
            },
            1e-6,
        );
    }

    #[test]
    fn relu_values() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]));
        let y = t.relu(a);
        assert_eq!(t.value(y).data(), &[0.0, 0.0, 2.0]);
        let loss = t.sum(y);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn clamp_saturates_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 3, vec![-0.5, 0.5, 1.5]));
        let y = t.clamp(a, 0.0, 1.0);
        assert_eq!(t.value(y).data(), &[0.0, 0.5, 1.0]);
        let loss = t.sum(y);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn gradients_take_returns_zero_for_missing() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::scalar(1.0));
        let b = t.leaf(Matrix::zeros(2, 3));
        let loss = t.scale(a, 1.0);
        let mut g = t.backward(loss);
        let gb = g.take(b, (2, 3));
        assert_eq!(gb, Matrix::zeros(2, 3));
    }
}
