//! Finite-difference gradient checking.
//!
//! Public (not test-only) so downstream crates can validate custom ops
//! against numerical gradients, and so the workspace's own tests share one
//! checker.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Checks analytic gradients against central finite differences.
///
/// `shapes` gives the leaf shapes; `build` receives a fresh tape and the
/// leaf vars, and must return a scalar loss var. Leaves are filled with
/// deterministic pseudo-random values in `(-1, 1)`.
///
/// # Panics
/// If any analytic gradient entry deviates from the numerical estimate by
/// more than `tol` (absolute, after normalizing by `1 + |numeric|`).
pub fn check_gradients(
    shapes: &[(usize, usize)],
    build: impl Fn(&mut Tape, &[Var]) -> Var,
    tol: f64,
) {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let inputs: Vec<Matrix> = shapes
        .iter()
        .map(|&(r, c)| Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0)))
        .collect();
    check_gradients_at(&inputs, build, tol);
}

/// Like [`check_gradients`] but with caller-provided leaf values, for ops
/// whose domain is restricted (e.g. probabilities in `[0, 1]`).
pub fn check_gradients_at(inputs: &[Matrix], build: impl Fn(&mut Tape, &[Var]) -> Var, tol: f64) {
    let eval = |points: &[Matrix]| -> (f64, Vec<Matrix>) {
        let mut tape = Tape::new();
        let vars: Vec<Var> = points.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = build(&mut tape, &vars);
        let value = tape.value(loss).as_scalar();
        let grads = tape.backward(loss);
        let gs = vars
            .iter()
            .zip(points)
            .map(|(&v, m)| {
                grads
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| Matrix::zeros(m.rows(), m.cols()))
            })
            .collect();
        (value, gs)
    };

    let (_, analytic) = eval(inputs);
    let h = 1e-5;
    for (pi, input) in inputs.iter().enumerate() {
        for idx in 0..input.data().len() {
            let mut plus = inputs.to_vec();
            plus[pi].data_mut()[idx] += h;
            let mut minus = inputs.to_vec();
            minus[pi].data_mut()[idx] -= h;
            let numeric = (eval(&plus).0 - eval(&minus).0) / (2.0 * h);
            let got = analytic[pi].data()[idx];
            let err = (got - numeric).abs() / (1.0 + numeric.abs());
            assert!(
                err <= tol,
                "gradient mismatch: input {pi} entry {idx}: analytic {got}, numeric {numeric}, err {err} > tol {tol}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_accepts_correct_gradient() {
        check_gradients(&[(2, 2)], |t, v| t.sum(v[0]), 1e-8);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn checker_rejects_wrong_gradient() {
        // scale() claims gradient c, but we lie about the forward value by
        // composing ops whose finite difference won't match a deliberately
        // miscalibrated tolerance of 0 on a nonlinear function.
        check_gradients(
            &[(2, 2)],
            |t, v| {
                let y = t.sigmoid(v[0]);
                let z = t.relu(y); // relu kink ~0.5 region is fine; force failure via tol=0
                t.sum(z)
            },
            0.0,
        );
    }
}
