//! Dense row-major `f64` matrices.
//!
//! PrivIM subgraphs are small (n ≤ ~100 nodes, hidden size 32), so a simple
//! cache-friendly dense kernel is both sufficient and fast; the sparse
//! message-passing structure is handled by the dedicated graph ops in
//! [`crate::graph_ops`], not by dense adjacency matrices.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A 1×1 matrix holding `value`.
    pub fn scalar(value: f64) -> Self {
        Matrix::from_vec(1, 1, vec![value])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the payload length matches the declared shape. Matrices
    /// built through the constructors always are; deserialized ones may
    /// not be (a truncated or tampered file can declare `rows × cols`
    /// while carrying fewer values), so loaders must check before any
    /// indexing arithmetic trusts the shape.
    #[inline]
    pub fn is_consistent(&self) -> bool {
        self.data.len() == self.rows * self.cols
    }

    /// Flat row-major data slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a 1×1 matrix.
    ///
    /// # Panics
    /// If the matrix is not 1×1.
    pub fn as_scalar(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "as_scalar on non-1x1 matrix");
        self.data[0]
    }

    /// Matrix product `self × rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dims {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the inner loop streams rows of `rhs` and `out`.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dims");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                out[(i, j)] = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dims");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination with another matrix of identical shape.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += c * other` (AXPY).
    pub fn add_scaled_assign(&mut self, c: f64, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += c * b;
        }
    }

    /// `self *= c` in place.
    pub fn scale_assign(&mut self, c: f64) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius (flattened l2) norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Flat dot product with a matrix of the same shape.
    pub fn dot(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// True if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Xavier/Glorot uniform initialization: entries uniform in `±sqrt(6/(fan_in+fan_out))`.
pub fn xavier_uniform<R: rand::Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let bound = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_and_tn_match_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.3 - 1.0).collect());
        assert_eq!(a.matmul_nt(&b).data(), a.matmul(&b.transpose()).data());
        let c = Matrix::from_vec(2, 4, (0..8).map(|i| (i as f64).sin()).collect());
        assert_eq!(a.matmul_tn(&c).data(), a.transpose().matmul(&c).data());
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn scalar_helpers() {
        let s = Matrix::scalar(3.5);
        assert_eq!(s.as_scalar(), 3.5);
        assert_eq!(s.shape(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "non-1x1")]
    fn as_scalar_panics_on_larger() {
        Matrix::zeros(2, 2).as_scalar();
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_scaled_assign(0.5, &b);
        assert_eq!(a.data(), &[2.0, 2.0, 2.0, 2.0]);
        a.scale_assign(0.25);
        assert_eq!(a.data(), &[0.5, 0.5, 0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn norms_and_sums() {
        let a = Matrix::from_vec(1, 4, vec![3.0, 4.0, 0.0, 0.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.dot(&a), 25.0);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = a.map(f64::abs);
        assert_eq!(b.data(), &[1.0, 2.0, 3.0]);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2.0, 0.0, 6.0]);
    }

    #[test]
    fn xavier_respects_bound_and_seed() {
        let mut rng = StdRng::seed_from_u64(42);
        let w = xavier_uniform(16, 32, &mut rng);
        let bound = (6.0f64 / 48.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
        let mut rng2 = StdRng::seed_from_u64(42);
        assert_eq!(w, xavier_uniform(16, 32, &mut rng2));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.is_finite());
        a[(1, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(a.row(1), &[2.0, 3.0]);
        a.row_mut(2)[0] = 9.0;
        assert_eq!(a[(2, 0)], 9.0);
    }
}
