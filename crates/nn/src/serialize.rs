//! Model checkpointing.
//!
//! Serializes a trained model's parameters (plus the architecture metadata
//! needed to rebuild it) to JSON. Publishing a checkpoint of a DP-trained
//! model is safe post-processing: the privacy guarantee covers the
//! parameters themselves.

use serde::{Deserialize, Serialize};
use std::path::Path;

use crate::matrix::Matrix;
use crate::models::{build_model, GnnModel, ModelKind};
use crate::params::ParamSet;

/// A serializable snapshot of a trained model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Architecture.
    pub kind: ModelKind,
    /// Input feature dimensionality.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of message-passing layers.
    pub layers: usize,
    /// Parameter names and values, in registration order.
    pub params: Vec<(String, Matrix)>,
}

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(serde_json::Error),
    /// The stored parameters do not fit the declared architecture.
    Shape(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Parse(e) => write!(f, "parse error: {e}"),
            CheckpointError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Captures a model's current parameters.
    pub fn capture(model: &dyn GnnModel, in_dim: usize, hidden: usize, layers: usize) -> Self {
        Checkpoint {
            kind: model.kind(),
            in_dim,
            hidden,
            layers,
            params: model
                .params()
                .iter()
                .map(|p| (p.name.clone(), p.value.clone()))
                .collect(),
        }
    }

    /// Rebuilds the model and restores the captured parameters.
    pub fn restore(&self) -> Result<Box<dyn GnnModel>, CheckpointError> {
        self.validate()?;
        // Architecture construction needs an RNG for the initial weights we
        // are about to overwrite; any fixed seed works.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let mut model = build_model(self.kind, self.in_dim, self.hidden, self.layers, &mut rng);
        restore_params(model.params_mut(), &self.params)?;
        Ok(model)
    }

    /// Structural validation of untrusted checkpoint contents: the
    /// declared architecture must be buildable (`layers ≥ 1`, nonzero
    /// dims) and every stored matrix's payload length must agree with
    /// its declared shape. A JSON document can declare `rows × cols`
    /// while carrying a different number of values — per-matrix *shape*
    /// comparison alone would accept it and later indexing would panic.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.layers == 0 || self.in_dim == 0 || self.hidden == 0 {
            return Err(CheckpointError::Shape(format!(
                "unbuildable architecture: in_dim {}, hidden {}, layers {}",
                self.in_dim, self.hidden, self.layers
            )));
        }
        for (name, value) in &self.params {
            if !value.is_consistent() {
                let (r, c) = value.shape();
                return Err(CheckpointError::Shape(format!(
                    "{name}: declared {r}x{c} but payload holds {} values",
                    value.data().len()
                )));
            }
            if !value.data().iter().all(|v| v.is_finite()) {
                return Err(CheckpointError::Shape(format!(
                    "{name}: payload contains non-finite values"
                )));
            }
        }
        Ok(())
    }

    /// A stable 64-bit FNV-1a digest over the checkpoint's semantic
    /// content: architecture metadata, parameter names, and the exact
    /// bit patterns of every weight. Independent of the JSON rendering
    /// (whitespace, float formatting, field order), so the same trained
    /// model always digests identically no matter how it was persisted.
    /// Audit artifacts key on it, and it is the checkpoint half of the
    /// serve tier's (checkpoint digest, graph digest, k) cache key.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.kind.name().as_bytes());
        eat(&(self.in_dim as u64).to_le_bytes());
        eat(&(self.hidden as u64).to_le_bytes());
        eat(&(self.layers as u64).to_le_bytes());
        eat(&(self.params.len() as u64).to_le_bytes());
        for (name, value) in &self.params {
            eat(name.as_bytes());
            let (rows, cols) = value.shape();
            eat(&(rows as u64).to_le_bytes());
            eat(&(cols as u64).to_le_bytes());
            for &v in value.data() {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// [`Checkpoint::digest`] rendered as the fixed-width hex string
    /// used in `/version` bodies and audit rows.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Writes the checkpoint as JSON.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self).map_err(CheckpointError::Parse)?;
        std::fs::write(path, json).map_err(CheckpointError::Io)
    }

    /// Reads a checkpoint from JSON, validating the payload against the
    /// declared shapes before handing it out.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
        let checkpoint: Checkpoint = serde_json::from_str(&text).map_err(CheckpointError::Parse)?;
        checkpoint.validate()?;
        Ok(checkpoint)
    }
}

fn restore_params(
    params: &mut ParamSet,
    stored: &[(String, Matrix)],
) -> Result<(), CheckpointError> {
    if params.len() != stored.len() {
        return Err(CheckpointError::Shape(format!(
            "model has {} parameters, checkpoint has {}",
            params.len(),
            stored.len()
        )));
    }
    for (param, (name, value)) in params.iter_mut().zip(stored) {
        if &param.name != name {
            return Err(CheckpointError::Shape(format!(
                "parameter order mismatch: expected {}, found {name}",
                param.name
            )));
        }
        if param.value.shape() != value.shape() {
            return Err(CheckpointError::Shape(format!(
                "{name}: expected {:?}, found {:?}",
                param.value.shape(),
                value.shape()
            )));
        }
        param.value = value.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_tensors::GraphTensors;
    use privim_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph_tensors() -> GraphTensors {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 1.0);
        }
        GraphTensors::with_structural_features(&b.build(), 4)
    }

    #[test]
    fn capture_restore_round_trip_preserves_outputs() {
        let gt = graph_tensors();
        let mut rng = StdRng::seed_from_u64(9);
        for kind in ModelKind::ALL {
            let model = build_model(kind, 4, 8, 2, &mut rng);
            let snapshot = Checkpoint::capture(model.as_ref(), 4, 8, 2);
            let restored = snapshot.restore().unwrap();
            assert_eq!(
                model.seed_probabilities(&gt),
                restored.seed_probabilities(&gt),
                "{kind}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let gt = graph_tensors();
        let mut rng = StdRng::seed_from_u64(10);
        let model = build_model(ModelKind::Grat, 4, 8, 3, &mut rng);
        let snapshot = Checkpoint::capture(model.as_ref(), 4, 8, 3);
        let path = std::env::temp_dir().join("privim-checkpoint-test.json");
        snapshot.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        let restored = loaded.restore().unwrap();
        assert_eq!(
            model.seed_probabilities(&gt),
            restored.seed_probabilities(&gt)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut rng = StdRng::seed_from_u64(21);
        let model = build_model(ModelKind::Gcn, 4, 8, 2, &mut rng);
        let snapshot = Checkpoint::capture(model.as_ref(), 4, 8, 2);
        // Deterministic: the same snapshot digests identically, and the
        // hex form is the fixed-width rendering of the same value.
        assert_eq!(snapshot.digest(), snapshot.digest());
        assert_eq!(snapshot.digest_hex(), format!("{:016x}", snapshot.digest()));
        assert_eq!(snapshot.digest_hex().len(), 16);
        // A clone digests the same; any semantic change does not.
        let clone = snapshot.clone();
        assert_eq!(clone.digest(), snapshot.digest());
        let mut flipped = snapshot.clone();
        let w = flipped.params[0].1.data_mut()[0];
        flipped.params[0].1.data_mut()[0] = w + 1.0;
        assert_ne!(flipped.digest(), snapshot.digest());
        let mut renamed = snapshot.clone();
        renamed.params[0].0.push('x');
        assert_ne!(renamed.digest(), snapshot.digest());
        let mut resized = snapshot.clone();
        resized.hidden += 1;
        assert_ne!(resized.digest(), snapshot.digest());
        // Sign-of-zero is a distinct bit pattern and must be visible.
        let mut zeroed = snapshot.clone();
        zeroed.params[0].1.data_mut()[0] = 0.0;
        let mut neg_zeroed = snapshot.clone();
        neg_zeroed.params[0].1.data_mut()[0] = -0.0;
        assert_ne!(zeroed.digest(), neg_zeroed.digest());
    }

    #[test]
    fn restore_rejects_mismatched_architecture() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = build_model(ModelKind::Gcn, 4, 8, 2, &mut rng);
        let mut snapshot = Checkpoint::capture(model.as_ref(), 4, 8, 2);
        snapshot.hidden = 16; // wrong width
        assert!(matches!(snapshot.restore(), Err(CheckpointError::Shape(_))));
        let mut snapshot = Checkpoint::capture(model.as_ref(), 4, 8, 2);
        snapshot.params.pop();
        assert!(matches!(snapshot.restore(), Err(CheckpointError::Shape(_))));
    }

    #[test]
    fn load_never_panics_on_truncated_or_bit_flipped_files() {
        // Serialize a real checkpoint, then attack the byte stream:
        // every truncation prefix and a byte-flip sweep must surface as a
        // `CheckpointError`, never a panic or a silently-accepted model.
        let mut rng = StdRng::seed_from_u64(12);
        let model = build_model(ModelKind::Gcn, 4, 8, 2, &mut rng);
        let snapshot = Checkpoint::capture(model.as_ref(), 4, 8, 2);
        let path = std::env::temp_dir().join("privim-checkpoint-mutate.json");
        snapshot.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let baseline = snapshot
            .restore()
            .unwrap()
            .seed_probabilities(&graph_tensors());

        // Truncations: step through prefixes (full sweep is O(n^2) parse
        // work; a stride keeps the test fast while covering every region).
        for cut in (0..bytes.len()).step_by(7) {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            match Checkpoint::load(&path) {
                Err(_) => {}
                Ok(loaded) => {
                    // A truncation that still parses must still restore
                    // cleanly or fail with a typed error — no panics.
                    if let Ok(m) = loaded.restore() {
                        let _ = m.seed_probabilities(&graph_tensors());
                    }
                }
            }
        }

        // Bit flips: corrupt one byte at a stride across the file.
        for pos in (0..bytes.len()).step_by(11) {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x10;
            std::fs::write(&path, &mutated).unwrap();
            if let Ok(loaded) = Checkpoint::load(&path) {
                if let Ok(m) = loaded.restore() {
                    let _ = m.seed_probabilities(&graph_tensors());
                }
            }
        }

        // The pristine bytes still work after the abuse.
        std::fs::write(&path, &bytes).unwrap();
        let reloaded = Checkpoint::load(&path).unwrap().restore().unwrap();
        assert_eq!(baseline, reloaded.seed_probabilities(&graph_tensors()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_inconsistent_payload() {
        let mut rng = StdRng::seed_from_u64(13);
        let model = build_model(ModelKind::Gcn, 4, 8, 2, &mut rng);
        let mut snapshot = Checkpoint::capture(model.as_ref(), 4, 8, 2);
        snapshot.layers = 0;
        assert!(matches!(
            snapshot.validate(),
            Err(CheckpointError::Shape(_))
        ));
        let mut snapshot = Checkpoint::capture(model.as_ref(), 4, 8, 2);
        snapshot.params[0].1.data_mut()[0] = f64::NAN;
        assert!(matches!(
            snapshot.validate(),
            Err(CheckpointError::Shape(_))
        ));
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("privim-checkpoint-garbage.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(CheckpointError::Parse(_))
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            Checkpoint::load("/nonexistent/privim.json"),
            Err(CheckpointError::Io(_))
        ));
    }
}
