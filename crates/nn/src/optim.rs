//! First-order optimizers.
//!
//! Algorithm 2 updates parameters with plain SGD on the averaged private
//! gradient (`W ← W − η/B · g̃`); [`Sgd`] implements exactly that. [`Adam`]
//! is provided for the non-private reference runs, where adaptivity does
//! not interact with the privacy analysis.

use crate::matrix::Matrix;
use crate::params::{GradVec, ParamSet};

/// A first-order optimizer over a [`ParamSet`].
pub trait Optimizer {
    /// Applies one update using gradient `grad`.
    fn step(&mut self, params: &mut ParamSet, grad: &GradVec);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;
}

/// Stochastic gradient descent: `W ← W − η · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate `η`.
    pub lr: f64,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grad: &GradVec) {
        for (p, g) in params.iter_mut().zip(grad.blocks()) {
            p.value.add_scaled_assign(-self.lr, g);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the customary defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grad: &GradVec) {
        if self.m.is_empty() {
            self.m = grad
                .blocks()
                .iter()
                .map(|b| Matrix::zeros(b.rows(), b.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grad.blocks())
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            for ((w, &gi), (mi, vi)) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_params(x0: f64) -> ParamSet {
        let mut p = ParamSet::new();
        p.add("x", Matrix::scalar(x0));
        p
    }

    fn quad_grad(params: &ParamSet) -> GradVec {
        // f(x) = (x - 3)^2, f'(x) = 2(x - 3)
        let x = params.get(0).value.as_scalar();
        GradVec::from_blocks(vec![Matrix::scalar(2.0 * (x - 3.0))])
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = quadratic_params(0.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quad_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p.get(0).value.as_scalar() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = quadratic_params(-5.0);
        let mut opt = Adam::new(0.2);
        for _ in 0..500 {
            let g = quad_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p.get(0).value.as_scalar() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_step_is_exact() {
        let mut p = quadratic_params(1.0);
        let mut opt = Sgd::new(0.5);
        let g = GradVec::from_blocks(vec![Matrix::scalar(4.0)]);
        opt.step(&mut p, &g);
        assert_eq!(p.get(0).value.as_scalar(), -1.0);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sgd_rejects_nonpositive_lr() {
        Sgd::new(0.0);
    }
}
