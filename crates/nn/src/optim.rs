//! First-order optimizers.
//!
//! Algorithm 2 updates parameters with plain SGD on the averaged private
//! gradient (`W ← W − η/B · g̃`); [`Sgd`] implements exactly that. [`Adam`]
//! is provided for the non-private reference runs, where adaptivity does
//! not interact with the privacy analysis.

use crate::matrix::Matrix;
use crate::params::{GradVec, ParamSet};

/// A first-order optimizer over a [`ParamSet`].
pub trait Optimizer {
    /// Applies one update using gradient `grad`.
    fn step(&mut self, params: &mut ParamSet, grad: &GradVec);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Captures the full internal state (moments, step counter) so a
    /// crash-safe checkpoint can restore the optimizer bit-for-bit.
    fn snapshot(&self) -> OptimizerSnapshot;
}

/// A serializable snapshot of an optimizer's internal state. SGD is
/// stateless beyond its learning rate; Adam carries its step counter and
/// first/second moments. [`OptimizerSnapshot::build`] reconstructs the
/// optimizer such that subsequent steps are bit-identical to the one the
/// snapshot was taken from.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerSnapshot {
    /// Plain SGD: `{ lr }`.
    Sgd {
        /// Learning rate `η`.
        lr: f64,
    },
    /// Adam: hyperparameters plus `(t, m, v)` state.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay β₁.
        beta1: f64,
        /// Second-moment decay β₂.
        beta2: f64,
        /// Stability constant ε.
        eps: f64,
        /// Bias-correction step counter.
        t: u64,
        /// First moments, one per parameter block.
        m: Vec<Matrix>,
        /// Second moments, one per parameter block.
        v: Vec<Matrix>,
    },
}

impl OptimizerSnapshot {
    /// Rebuilds the optimizer this snapshot captured.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match self {
            OptimizerSnapshot::Sgd { lr } => Box::new(Sgd::new(*lr)),
            OptimizerSnapshot::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            } => {
                let mut adam = Adam::new(*lr);
                adam.beta1 = *beta1;
                adam.beta2 = *beta2;
                adam.eps = *eps;
                adam.t = *t;
                adam.m = m.clone();
                adam.v = v.clone();
                Box::new(adam)
            }
        }
    }
}

/// Stochastic gradient descent: `W ← W − η · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate `η`.
    pub lr: f64,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grad: &GradVec) {
        for (p, g) in params.iter_mut().zip(grad.blocks()) {
            p.value.add_scaled_assign(-self.lr, g);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn snapshot(&self) -> OptimizerSnapshot {
        OptimizerSnapshot::Sgd { lr: self.lr }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the customary defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grad: &GradVec) {
        if self.m.is_empty() {
            self.m = grad
                .blocks()
                .iter()
                .map(|b| Matrix::zeros(b.rows(), b.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grad.blocks())
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            for ((w, &gi), (mi, vi)) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn snapshot(&self) -> OptimizerSnapshot {
        OptimizerSnapshot::Adam {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_params(x0: f64) -> ParamSet {
        let mut p = ParamSet::new();
        p.add("x", Matrix::scalar(x0));
        p
    }

    fn quad_grad(params: &ParamSet) -> GradVec {
        // f(x) = (x - 3)^2, f'(x) = 2(x - 3)
        let x = params.get(0).value.as_scalar();
        GradVec::from_blocks(vec![Matrix::scalar(2.0 * (x - 3.0))])
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = quadratic_params(0.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quad_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p.get(0).value.as_scalar() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = quadratic_params(-5.0);
        let mut opt = Adam::new(0.2);
        for _ in 0..500 {
            let g = quad_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p.get(0).value.as_scalar() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_step_is_exact() {
        let mut p = quadratic_params(1.0);
        let mut opt = Sgd::new(0.5);
        let g = GradVec::from_blocks(vec![Matrix::scalar(4.0)]);
        opt.step(&mut p, &g);
        assert_eq!(p.get(0).value.as_scalar(), -1.0);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sgd_rejects_nonpositive_lr() {
        Sgd::new(0.0);
    }

    #[test]
    fn snapshots_restore_bit_identical_trajectories() {
        // Run 5 steps, snapshot, run 5 more on (a) the original and (b)
        // the rebuilt optimizer: trajectories must agree to the bit.
        for make in [
            (|| Box::new(Sgd::new(0.1)) as Box<dyn Optimizer>) as fn() -> Box<dyn Optimizer>,
            || Box::new(Adam::new(0.2)),
        ] {
            let mut p = quadratic_params(-2.0);
            let mut opt = make();
            for _ in 0..5 {
                let g = quad_grad(&p);
                opt.step(&mut p, &g);
            }
            let snap = opt.snapshot();
            let mut p_restored = p.clone();
            let mut restored = snap.build();
            assert_eq!(restored.snapshot(), snap, "snapshot round trip");
            for _ in 0..5 {
                let g = quad_grad(&p);
                opt.step(&mut p, &g);
                let g2 = quad_grad(&p_restored);
                restored.step(&mut p_restored, &g2);
            }
            assert_eq!(
                p.get(0).value.as_scalar().to_bits(),
                p_restored.get(0).value.as_scalar().to_bits(),
                "restored optimizer must continue bit-identically"
            );
        }
    }
}
