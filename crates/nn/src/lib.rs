//! Neural-network substrate for the PrivIM reproduction.
//!
//! A compact, dependency-free deep-learning stack sized for PrivIM's
//! workload (per-subgraph training with per-sample gradients):
//!
//! - [`matrix::Matrix`] — dense row-major `f64` matrices.
//! - [`tape::Tape`] — reverse-mode autograd over matrices.
//! - [`graph_ops`] — sparse message-passing ops (SpMM, gather/scatter,
//!   segment softmax) recorded on the same tape.
//! - [`models`] — GCN, GraphSAGE, GAT, GRAT, GIN and an MLP baseline.
//! - [`params`] / [`optim`] — parameter sets, per-sample gradient vectors
//!   with l2 clipping, SGD and Adam.
//!
//! # Example: gradient of a tiny GNN loss
//!
//! ```
//! use privim_nn::prelude::*;
//! use privim_graph::GraphBuilder;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 1.0);
//! let g = b.build();
//! let gt = GraphTensors::with_structural_features(&g, 4);
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = build_model(ModelKind::Grat, 4, 8, 2, &mut rng);
//!
//! let mut tape = Tape::new();
//! let pv = model.params().bind(&mut tape);
//! let out = model.forward(&mut tape, &gt, &pv);
//! let loss = tape.sum(out);
//! let grads = tape.backward(loss);
//! let mut gv = model.params().grads(&pv, grads);
//! gv.clip(1.0);
//! assert!(gv.l2_norm() <= 1.0 + 1e-9);
//! ```

pub mod graph_ops;
pub mod graph_tensors;
pub mod matrix;
pub mod models;
pub mod optim;
pub mod params;
pub(crate) mod profiling;
pub mod serialize;
pub mod tape;
pub mod testutil;

/// Convenient glob import of the crate's main types.
pub mod prelude {
    pub use crate::graph_tensors::{structural_features, GraphTensors};
    pub use crate::matrix::Matrix;
    pub use crate::models::{build_model, GnnModel, ModelKind};
    pub use crate::optim::{Adam, Optimizer, Sgd};
    pub use crate::params::{GradVec, ParamSet};
    pub use crate::serialize::Checkpoint;
    pub use crate::tape::{Gradients, Tape, Var};
}
