//! Profiling glue for the autograd kernels.
//!
//! Every hot op opens a [`privim_obs::ProfScope`] on its forward and
//! backward paths and reports work counters (FLOPs for dense ops, edges
//! for sparse ops). Both are gated on the process-wide profiling flag:
//! with profiling off (the default) each instrumented op costs exactly
//! one relaxed atomic load and touches neither the clock nor the metric
//! registry, so seeded runs stay bit-identical.

/// Adds `n` to the global counter `name`, but only while profiling is
/// enabled — counter lookups take a registry lock, which is too heavy
/// for per-op forward/backward paths to pay unconditionally.
#[inline]
pub(crate) fn add_count(name: &'static str, n: u64) {
    if privim_obs::profiling_enabled() {
        privim_obs::counter(name).add(n);
    }
}
