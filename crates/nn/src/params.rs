//! Model parameters and per-sample gradient vectors.
//!
//! DP-SGD (Algorithm 2) treats one subgraph as one sample: it needs each
//! sample's full gradient as a single flat vector to clip its global l2
//! norm. [`GradVec`] is that vector, kept in per-parameter blocks aligned
//! with a [`ParamSet`].

use rand::Rng;

use crate::matrix::{xavier_uniform, Matrix};
use crate::tape::{Gradients, Tape, Var};

/// A named model parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable name (e.g. `"layer0.weight"`).
    pub name: String,
    /// Current value.
    pub value: Matrix,
}

/// An ordered collection of model parameters.
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// An empty parameter set.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Registers a parameter and returns its index.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> usize {
        self.params.push(Param {
            name: name.into(),
            value,
        });
        self.params.len() - 1
    }

    /// Registers a Xavier-initialized `rows × cols` parameter.
    pub fn add_xavier<R: Rng + ?Sized>(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> usize {
        self.add(name, xavier_uniform(rows, cols, rng))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Parameter at `index`.
    pub fn get(&self, index: usize) -> &Param {
        &self.params[index]
    }

    /// Iterates parameters in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Mutable iteration (used by optimizers).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// Total number of scalar entries across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.data().len()).sum()
    }

    /// Records every parameter as a leaf on `tape`; returns the vars in
    /// registration order.
    pub fn bind(&self, tape: &mut Tape) -> Vec<Var> {
        self.params
            .iter()
            .map(|p| tape.leaf(p.value.clone()))
            .collect()
    }

    /// Extracts this set's gradients from a backward pass.
    pub fn grads(&self, vars: &[Var], mut gradients: Gradients) -> GradVec {
        assert_eq!(vars.len(), self.params.len(), "var/param count mismatch");
        let blocks = vars
            .iter()
            .zip(&self.params)
            .map(|(&v, p)| gradients.take(v, p.value.shape()))
            .collect();
        GradVec { blocks }
    }
}

/// A flat gradient (or noise) vector in per-parameter blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct GradVec {
    blocks: Vec<Matrix>,
}

impl GradVec {
    /// A zero gradient shaped like `params`.
    pub fn zeros_like(params: &ParamSet) -> Self {
        GradVec {
            blocks: params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect(),
        }
    }

    /// Builds from raw blocks (must match the parameter shapes).
    pub fn from_blocks(blocks: Vec<Matrix>) -> Self {
        GradVec { blocks }
    }

    /// Per-parameter blocks.
    pub fn blocks(&self) -> &[Matrix] {
        &self.blocks
    }

    /// Mutable per-parameter blocks.
    pub fn blocks_mut(&mut self) -> &mut [Matrix] {
        &mut self.blocks
    }

    /// Total number of scalar entries across all blocks.
    pub fn num_entries(&self) -> usize {
        self.blocks.iter().map(|b| b.data().len()).sum()
    }

    /// Global l2 norm over all entries of all blocks.
    pub fn l2_norm(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.data().iter().map(|&x| x * x).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Clips the global l2 norm to at most `c` (Algorithm 2, line 6):
    /// `g ← g / max(1, ‖g‖₂ / C)`. Returns the pre-clip norm.
    pub fn clip(&mut self, c: f64) -> f64 {
        assert!(c > 0.0, "clip bound must be positive");
        let norm = self.l2_norm();
        let divisor = (norm / c).max(1.0);
        if divisor > 1.0 {
            let s = 1.0 / divisor;
            for b in &mut self.blocks {
                b.scale_assign(s);
            }
        }
        norm
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &GradVec) {
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "block count mismatch"
        );
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            a.add_assign(b);
        }
    }

    /// `self *= c`.
    pub fn scale_assign(&mut self, c: f64) {
        for b in &mut self.blocks {
            b.scale_assign(c);
        }
    }

    /// Applies `f` to every scalar entry (e.g. adding DP noise).
    pub fn map_entries_mut(&mut self, mut f: impl FnMut(&mut f64)) {
        for b in &mut self.blocks {
            for x in b.data_mut() {
                f(x);
            }
        }
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.blocks.iter().all(Matrix::is_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> ParamSet {
        let mut p = ParamSet::new();
        p.add("a", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        p.add("b", Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        p
    }

    #[test]
    fn bind_and_grads_round_trip() {
        let p = small_params();
        let mut t = Tape::new();
        let vars = p.bind(&mut t);
        assert_eq!(vars.len(), 2);
        // loss = sum(a) + 2*sum(b)
        let sa = t.sum(vars[0]);
        let sb = t.sum(vars[1]);
        let sb2 = t.scale(sb, 2.0);
        let loss = t.add(sa, sb2);
        let g = t.backward(loss);
        let gv = p.grads(&vars, g);
        assert_eq!(gv.blocks()[0].data(), &[1.0, 1.0]);
        assert_eq!(gv.blocks()[1].data(), &[2.0, 2.0]);
    }

    #[test]
    fn grads_missing_are_zero() {
        let p = small_params();
        let mut t = Tape::new();
        let vars = p.bind(&mut t);
        let loss = t.sum(vars[0]); // b unused
        let g = t.backward(loss);
        let gv = p.grads(&vars, g);
        assert_eq!(gv.blocks()[1], Matrix::zeros(2, 1));
    }

    #[test]
    fn clip_reduces_long_vectors_only() {
        let p = small_params();
        let mut g = GradVec::zeros_like(&p);
        g.blocks_mut()[0].data_mut().copy_from_slice(&[3.0, 4.0]); // norm 5
        let pre = g.clip(10.0);
        assert_eq!(pre, 5.0);
        assert_eq!(g.blocks()[0].data(), &[3.0, 4.0]); // untouched
        let pre = g.clip(1.0);
        assert_eq!(pre, 5.0);
        assert!((g.l2_norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_norm_never_exceeds_bound() {
        let p = small_params();
        for scale in [0.1, 1.0, 7.3, 1000.0] {
            let mut g = GradVec::zeros_like(&p);
            g.map_entries_mut(|x| *x = scale);
            g.clip(2.5);
            assert!(g.l2_norm() <= 2.5 + 1e-12);
        }
    }

    #[test]
    fn accumulate_and_scale() {
        let p = small_params();
        let mut acc = GradVec::zeros_like(&p);
        let mut one = GradVec::zeros_like(&p);
        one.map_entries_mut(|x| *x = 1.0);
        acc.add_assign(&one);
        acc.add_assign(&one);
        acc.scale_assign(0.5);
        acc.blocks()
            .iter()
            .for_each(|b| b.data().iter().for_each(|&x| assert_eq!(x, 1.0)));
    }

    #[test]
    fn xavier_params_have_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = ParamSet::new();
        p.add_xavier("w", 8, 4, &mut rng);
        assert_eq!(p.get(0).value.shape(), (8, 4));
        assert_eq!(p.num_scalars(), 32);
        assert_eq!(p.get(0).name, "w");
    }
}
