//! Sparse message-passing ops for GNNs.
//!
//! All ops operate on an edge list `(src[e], dst[e])` shared via `Rc` so the
//! backward closures can replay the sparsity pattern without copying it.
//! Aggregation follows the paper's convention (Eq. 2): node `u` aggregates
//! over its *in*-neighbors, i.e. over edges whose `dst` is `u`.

use std::rc::Rc;

use privim_obs::ProfScope;

use crate::matrix::Matrix;
use crate::profiling::add_count;
use crate::tape::{Tape, Var};

impl Tape {
    /// Sparse matrix product with fixed per-edge coefficients:
    /// `out[dst[e]] += coeff[e] * h[src[e]]` for every edge `e`.
    ///
    /// Gradient flows into `h` only (`coeff` is data, not a parameter):
    /// `dh[src[e]] += coeff[e] * dout[dst[e]]`.
    pub fn spmm_fixed(
        &mut self,
        h: Var,
        src: Rc<Vec<u32>>,
        dst: Rc<Vec<u32>>,
        coeff: Rc<Vec<f64>>,
        n_out: usize,
    ) -> Var {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), coeff.len(), "coeff length mismatch");
        let prof = ProfScope::enter("nn.spmm");
        add_count("nn.edges.spmm", src.len() as u64);
        let hv = self.value(h);
        let d = hv.cols();
        // Per edge: mul+add over d lanes; touch (src,dst) ids + coeff,
        // read the source row, read+write the destination row.
        let (e64, d64) = (src.len() as u64, d as u64);
        prof.add_work(2 * e64 * d64, e64 * (16 + 24 * d64), e64);
        let mut out = Matrix::zeros(n_out, d);
        for e in 0..src.len() {
            let (s, t, c) = (src[e] as usize, dst[e] as usize, coeff[e]);
            let src_row = hv.row(s).to_vec(); // avoid aliasing with out borrow
            for (o, x) in out.row_mut(t).iter_mut().zip(src_row) {
                *o += c * x;
            }
        }
        let (bs, bd, bc) = (Rc::clone(&src), Rc::clone(&dst), Rc::clone(&coeff));
        self.push(
            out,
            vec![h.0],
            Some(Box::new(move |ctx| {
                let prof = ProfScope::enter("nn.spmm.bwd");
                add_count("nn.edges.spmm", bs.len() as u64);
                let (n, d) = ctx.parents[0].shape();
                let (e64, d64) = (bs.len() as u64, d as u64);
                prof.add_work(2 * e64 * d64, e64 * (16 + 24 * d64), e64);
                let mut dh = Matrix::zeros(n, d);
                for e in 0..bs.len() {
                    let (s, t, c) = (bs[e] as usize, bd[e] as usize, bc[e]);
                    let g_row = ctx.grad.row(t).to_vec();
                    for (o, g) in dh.row_mut(s).iter_mut().zip(g_row) {
                        *o += c * g;
                    }
                }
                vec![dh]
            })),
        )
    }

    /// Scales row `i` of `h` by the fixed coefficient `scale[i]`.
    pub fn row_scale_fixed(&mut self, h: Var, scale: Rc<Vec<f64>>) -> Var {
        let hv = self.value(h);
        assert_eq!(hv.rows(), scale.len(), "scale length must equal rows");
        let mut out = hv.clone();
        for r in 0..out.rows() {
            let c = scale[r];
            for x in out.row_mut(r) {
                *x *= c;
            }
        }
        let bscale = Rc::clone(&scale);
        self.push(
            out,
            vec![h.0],
            Some(Box::new(move |ctx| {
                let mut dh = ctx.grad.clone();
                for r in 0..dh.rows() {
                    let c = bscale[r];
                    for x in dh.row_mut(r) {
                        *x *= c;
                    }
                }
                vec![dh]
            })),
        )
    }

    /// Gathers rows: `out[e] = h[idx[e]]`.
    pub fn gather_rows(&mut self, h: Var, idx: Rc<Vec<u32>>) -> Var {
        let prof = ProfScope::enter("nn.gather");
        add_count("nn.edges.gather", idx.len() as u64);
        let hv = self.value(h);
        let d = hv.cols();
        // Pure data movement: per edge an index plus a row copy in+out.
        let (e64, d64) = (idx.len() as u64, d as u64);
        prof.add_work(0, e64 * (4 + 16 * d64), e64);
        let mut out = Matrix::zeros(idx.len(), d);
        for (e, &i) in idx.iter().enumerate() {
            out.row_mut(e).copy_from_slice(hv.row(i as usize));
        }
        let bidx = Rc::clone(&idx);
        self.push(
            out,
            vec![h.0],
            Some(Box::new(move |ctx| {
                let prof = ProfScope::enter("nn.gather.bwd");
                let (n, d) = ctx.parents[0].shape();
                let (e64, d64) = (bidx.len() as u64, d as u64);
                prof.add_work(e64 * d64, e64 * (4 + 24 * d64), e64);
                let mut dh = Matrix::zeros(n, d);
                for (e, &i) in bidx.iter().enumerate() {
                    let g_row = ctx.grad.row(e).to_vec();
                    for (o, g) in dh.row_mut(i as usize).iter_mut().zip(g_row) {
                        *o += g;
                    }
                }
                vec![dh]
            })),
        )
    }

    /// Scatter-add: `out[idx[e]] += v[e]`, producing `n_out` rows.
    pub fn scatter_add_rows(&mut self, v: Var, idx: Rc<Vec<u32>>, n_out: usize) -> Var {
        let prof = ProfScope::enter("nn.scatter_add");
        add_count("nn.edges.scatter_add", idx.len() as u64);
        let vv = self.value(v);
        assert_eq!(vv.rows(), idx.len(), "scatter index length mismatch");
        let d = vv.cols();
        // Per edge: d adds; index + source row read + dest row read/write.
        let (e64, d64) = (idx.len() as u64, d as u64);
        prof.add_work(e64 * d64, e64 * (4 + 24 * d64), e64);
        let mut out = Matrix::zeros(n_out, d);
        for (e, &i) in idx.iter().enumerate() {
            let v_row = vv.row(e).to_vec();
            for (o, x) in out.row_mut(i as usize).iter_mut().zip(v_row) {
                *o += x;
            }
        }
        let bidx = Rc::clone(&idx);
        self.push(
            out,
            vec![v.0],
            Some(Box::new(move |ctx| {
                let prof = ProfScope::enter("nn.scatter_add.bwd");
                let (e_rows, d) = ctx.parents[0].shape();
                let (e64, d64) = (e_rows as u64, d as u64);
                prof.add_work(0, e64 * (4 + 16 * d64), e64);
                let mut dv = Matrix::zeros(e_rows, d);
                for (e, &i) in bidx.iter().enumerate() {
                    dv.row_mut(e).copy_from_slice(ctx.grad.row(i as usize));
                }
                vec![dv]
            })),
        )
    }

    /// Multiplies row `e` of `v` (E×d) by the scalar `s[e]` (E×1), with
    /// gradients to both operands — the differentiable attention-weighted
    /// aggregation step of GAT/GRAT.
    pub fn row_mul(&mut self, v: Var, s: Var) -> Var {
        let _prof = ProfScope::enter("nn.row_mul");
        let (e_rows, d) = self.value(v).shape();
        assert_eq!(self.value(s).shape(), (e_rows, 1), "s must be E x 1");
        let sv = self.value(s).data().to_vec();
        let mut out = self.value(v).clone();
        for (r, &c) in sv.iter().enumerate().take(e_rows) {
            for x in out.row_mut(r) {
                *x *= c;
            }
        }
        self.push(
            out,
            vec![v.0, s.0],
            Some(Box::new(move |ctx| {
                let _prof = ProfScope::enter("nn.row_mul.bwd");
                let (e_rows, d) = (ctx.parents[0].rows(), d);
                let mut dv = ctx.grad.clone();
                let mut ds = Matrix::zeros(e_rows, 1);
                for r in 0..e_rows {
                    let c = ctx.parents[1][(r, 0)];
                    let mut acc = 0.0;
                    for k in 0..d {
                        acc += ctx.grad[(r, k)] * ctx.parents[0][(r, k)];
                        dv[(r, k)] *= c;
                    }
                    ds[(r, 0)] = acc;
                }
                vec![dv, ds]
            })),
        )
    }

    /// Per-node survival product for the IC diffusion loss:
    /// `out[u] = Π_{e : dst[e] = u} (1 − w[e] · a[src[e]])`, with `a` an
    /// `N × 1` activation-probability vector. Nodes without in-edges
    /// survive with probability 1.
    ///
    /// This is the exact complement of Theorem 2's influence probability
    /// `p(u|S) = 1 − Π (1 − w_vu · a_v)`. Unlike the truncated-sum upper
    /// bound, its gradient never saturates on dense neighborhoods, which
    /// is what makes the Eq. 5 loss discriminative there.
    ///
    /// Gradient: `∂out[u]/∂a[src[e]] = −w[e] · Π_{e' ≠ e} (1 − w·a)`,
    /// computed stably even when individual factors are exactly zero.
    pub fn neighbor_survival(
        &mut self,
        a: Var,
        src: Rc<Vec<u32>>,
        dst: Rc<Vec<u32>>,
        weight: Rc<Vec<f64>>,
        n_out: usize,
    ) -> Var {
        let _prof = ProfScope::enter("nn.neighbor_survival");
        add_count("nn.edges.neighbor_survival", src.len() as u64);
        let av = self.value(a);
        assert_eq!(av.cols(), 1, "activation must be N x 1");
        let mut out = Matrix::filled(n_out, 1, 1.0);
        for e in 0..src.len() {
            let factor = 1.0 - weight[e] * av[(src[e] as usize, 0)];
            out[(dst[e] as usize, 0)] *= factor;
        }
        let (bs, bd, bw) = (Rc::clone(&src), Rc::clone(&dst), Rc::clone(&weight));
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |ctx| {
                let _prof = ProfScope::enter("nn.neighbor_survival.bwd");
                let a_val = ctx.parents[0];
                let n_out = ctx.grad.rows();
                // Zero-count bookkeeping: with z zero factors at node u,
                // Π_{e'≠e} is zero unless e is the unique zero factor.
                let mut zero_count = vec![0u32; n_out];
                let mut prod_nonzero = vec![1.0f64; n_out];
                let mut factors = vec![0.0f64; bs.len()];
                for e in 0..bs.len() {
                    let f = 1.0 - bw[e] * a_val[(bs[e] as usize, 0)];
                    factors[e] = f;
                    let u = bd[e] as usize;
                    if f == 0.0 {
                        zero_count[u] += 1;
                    } else {
                        prod_nonzero[u] *= f;
                    }
                }
                let mut da = Matrix::zeros(a_val.rows(), 1);
                for e in 0..bs.len() {
                    let u = bd[e] as usize;
                    let others = match (zero_count[u], factors[e] == 0.0) {
                        (0, _) => prod_nonzero[u] / factors[e],
                        (1, true) => prod_nonzero[u],
                        _ => 0.0,
                    };
                    da[(bs[e] as usize, 0)] += ctx.grad[(u, 0)] * (-bw[e]) * others;
                }
                vec![da]
            })),
        )
    }

    /// Softmax of `scores` (E×1) within segments: entries sharing
    /// `segment[e]` are normalized together. GAT groups edges by
    /// destination; GRAT groups by source (its defining difference).
    ///
    /// Numerically stabilized by subtracting the per-segment maximum.
    pub fn segment_softmax(
        &mut self,
        scores: Var,
        segment: Rc<Vec<u32>>,
        n_segments: usize,
    ) -> Var {
        let prof = ProfScope::enter("nn.segment_softmax");
        add_count("nn.edges.segment_softmax", segment.len() as u64);
        // Three passes over E edges: max, exp-and-sum (sub, exp, add),
        // normalize (div) — 5 flops/edge counting exp as one.
        let e64 = segment.len() as u64;
        prof.add_work(5 * e64, 52 * e64, e64);
        let sv = self.value(scores);
        assert_eq!(sv.shape(), (segment.len(), 1), "scores must be E x 1");
        let mut seg_max = vec![f64::NEG_INFINITY; n_segments];
        for (e, &g) in segment.iter().enumerate() {
            seg_max[g as usize] = seg_max[g as usize].max(sv[(e, 0)]);
        }
        let mut seg_sum = vec![0.0f64; n_segments];
        let mut out = Matrix::zeros(segment.len(), 1);
        for (e, &g) in segment.iter().enumerate() {
            let x = (sv[(e, 0)] - seg_max[g as usize]).exp();
            out[(e, 0)] = x;
            seg_sum[g as usize] += x;
        }
        for (e, &g) in segment.iter().enumerate() {
            out[(e, 0)] /= seg_sum[g as usize];
        }
        let bseg = Rc::clone(&segment);
        self.push(
            out,
            vec![scores.0],
            Some(Box::new(move |ctx| {
                let prof = ProfScope::enter("nn.segment_softmax.bwd");
                // dscore_e = α_e * (g_e - Σ_{e' in segment} α_e' g_e')
                // Two passes: dot accumulate (mul+add), then sub+mul.
                let e_rows = bseg.len();
                prof.add_work(4 * e_rows as u64, 48 * e_rows as u64, e_rows as u64);
                let mut seg_dot = vec![0.0f64; n_segments];
                for (e, &g) in bseg.iter().enumerate() {
                    seg_dot[g as usize] += ctx.output[(e, 0)] * ctx.grad[(e, 0)];
                }
                let mut ds = Matrix::zeros(e_rows, 1);
                for (e, &g) in bseg.iter().enumerate() {
                    let alpha = ctx.output[(e, 0)];
                    ds[(e, 0)] = alpha * (ctx.grad[(e, 0)] - seg_dot[g as usize]);
                }
                vec![ds]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_gradients;

    fn rc(v: Vec<u32>) -> Rc<Vec<u32>> {
        Rc::new(v)
    }

    #[test]
    fn spmm_fixed_forward_matches_dense() {
        // Graph: 0->1 (w 2.0), 0->2 (w 3.0), 1->2 (w 0.5)
        let mut t = Tape::new();
        let h = t.leaf(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let out = t.spmm_fixed(
            h,
            rc(vec![0, 0, 1]),
            rc(vec![1, 2, 2]),
            Rc::new(vec![2.0, 3.0, 0.5]),
            3,
        );
        let v = t.value(out);
        assert_eq!(v.row(0), &[0., 0.]);
        assert_eq!(v.row(1), &[2., 4.]);
        assert_eq!(v.row(2), &[3. + 1.5, 6. + 2.]);
    }

    #[test]
    fn spmm_fixed_gradcheck() {
        let src = rc(vec![0, 0, 1, 2, 3]);
        let dst = rc(vec![1, 2, 2, 3, 0]);
        let coeff = Rc::new(vec![0.5, -1.0, 2.0, 0.3, 1.1]);
        check_gradients(
            &[(4, 3)],
            move |t, vars| {
                let y = t.spmm_fixed(
                    vars[0],
                    Rc::clone(&src),
                    Rc::clone(&dst),
                    Rc::clone(&coeff),
                    4,
                );
                let y = t.tanh(y);
                t.sum(y)
            },
            1e-6,
        );
    }

    #[test]
    fn row_scale_fixed_gradcheck() {
        let scale = Rc::new(vec![0.5, 2.0, -1.0]);
        check_gradients(
            &[(3, 2)],
            move |t, vars| {
                let y = t.row_scale_fixed(vars[0], Rc::clone(&scale));
                let y = t.sigmoid(y);
                t.sum(y)
            },
            1e-6,
        );
    }

    #[test]
    fn gather_scatter_round_trip_values() {
        let mut t = Tape::new();
        let h = t.leaf(Matrix::from_vec(2, 1, vec![10.0, 20.0]));
        let g = t.gather_rows(h, rc(vec![1, 0, 1]));
        assert_eq!(t.value(g).data(), &[20.0, 10.0, 20.0]);
        let s = t.scatter_add_rows(g, rc(vec![0, 0, 1]), 2);
        assert_eq!(t.value(s).data(), &[30.0, 20.0]);
    }

    #[test]
    fn gather_rows_gradcheck() {
        let idx = rc(vec![2, 0, 1, 2, 2]);
        check_gradients(
            &[(3, 2)],
            move |t, vars| {
                let y = t.gather_rows(vars[0], Rc::clone(&idx));
                let y = t.tanh(y);
                t.sum(y)
            },
            1e-6,
        );
    }

    #[test]
    fn scatter_add_gradcheck() {
        let idx = rc(vec![1, 1, 0, 2]);
        check_gradients(
            &[(4, 2)],
            move |t, vars| {
                let y = t.scatter_add_rows(vars[0], Rc::clone(&idx), 3);
                let y = t.sigmoid(y);
                t.sum(y)
            },
            1e-6,
        );
    }

    #[test]
    fn row_mul_gradcheck() {
        check_gradients(
            &[(4, 3), (4, 1)],
            |t, vars| {
                let y = t.row_mul(vars[0], vars[1]);
                let y = t.tanh(y);
                t.sum(y)
            },
            1e-6,
        );
    }

    #[test]
    fn segment_softmax_normalizes_per_segment() {
        let mut t = Tape::new();
        let s = t.leaf(Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 100.0]));
        let seg = rc(vec![0, 0, 1, 1]);
        let y = t.segment_softmax(s, seg, 2);
        let v = t.value(y);
        assert!((v[(0, 0)] + v[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((v[(2, 0)] + v[(3, 0)] - 1.0).abs() < 1e-12);
        assert!(v[(1, 0)] > v[(0, 0)]);
        // Large score must not overflow thanks to max subtraction.
        assert!(v[(3, 0)] > 0.999);
    }

    #[test]
    fn segment_softmax_gradcheck() {
        let seg = rc(vec![0, 0, 0, 1, 1]);
        check_gradients(
            &[(5, 1), (5, 1)],
            move |t, vars| {
                let a = t.segment_softmax(vars[0], Rc::clone(&seg), 2);
                let w = t.mul(a, vars[1]); // weight by arbitrary values
                t.sum(w)
            },
            1e-6,
        );
    }

    #[test]
    fn neighbor_survival_values() {
        // Node 2 has in-edges from 0 (w=1) and 1 (w=0.5).
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(3, 1, vec![0.4, 0.8, 0.0]));
        let y = t.neighbor_survival(
            a,
            rc(vec![0, 1]),
            rc(vec![2, 2]),
            Rc::new(vec![1.0, 0.5]),
            3,
        );
        let v = t.value(y);
        assert_eq!(v[(0, 0)], 1.0, "no in-edges survive with probability 1");
        assert_eq!(v[(1, 0)], 1.0);
        let want = (1.0 - 0.4) * (1.0 - 0.5 * 0.8);
        assert!((v[(2, 0)] - want).abs() < 1e-12);
    }

    #[test]
    fn neighbor_survival_gradcheck() {
        let src = rc(vec![0, 1, 2, 0, 3]);
        let dst = rc(vec![2, 2, 3, 3, 0]);
        let w = Rc::new(vec![0.9, 0.5, 0.7, 0.3, 0.8]);
        // Keep activations strictly inside (0, 1) so no factor is zero.
        let a0 = Matrix::from_vec(4, 1, vec![0.2, 0.6, 0.35, 0.75]);
        crate::testutil::check_gradients_at(
            &[a0],
            move |t, vars| {
                let y = t.neighbor_survival(
                    vars[0],
                    Rc::clone(&src),
                    Rc::clone(&dst),
                    Rc::clone(&w),
                    4,
                );
                t.sum(y)
            },
            1e-6,
        );
    }

    #[test]
    fn neighbor_survival_handles_exact_zero_factors() {
        // a[0] = 1 with w = 1 gives factor exactly 0 at node 1.
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 0.5, 0.0]));
        let y = t.neighbor_survival(
            a,
            rc(vec![0, 2]),
            rc(vec![1, 1]),
            Rc::new(vec![1.0, 1.0]),
            3,
        );
        assert_eq!(t.value(y)[(1, 0)], 0.0);
        let loss = t.sum(y);
        let g = t.backward(loss);
        let da = g.get(a).unwrap();
        // d survive(1)/d a0 = -1 · (1 - a2) = -1; d/d a2 = -1 · 0 = 0.
        assert!((da[(0, 0)] + 1.0).abs() < 1e-12, "{da:?}");
        assert_eq!(da[(2, 0)], 0.0);
        assert!(da.is_finite());
    }

    #[test]
    fn singleton_segments_softmax_to_one() {
        let mut t = Tape::new();
        let s = t.leaf(Matrix::from_vec(3, 1, vec![-5.0, 0.0, 7.0]));
        let y = t.segment_softmax(s, rc(vec![0, 1, 2]), 3);
        for e in 0..3 {
            assert!((t.value(y)[(e, 0)] - 1.0).abs() < 1e-12);
        }
    }
}
