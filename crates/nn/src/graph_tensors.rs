//! Per-subgraph tensor bundle consumed by the GNN models.
//!
//! [`GraphTensors`] precomputes, once per subgraph, everything the forward
//! passes need: edge index arrays, GCN normalization coefficients, mean
//! aggregation coefficients, and node features. Arrays are `Rc`-shared so
//! autograd backward closures can reference them without copies.

use std::rc::Rc;

use privim_graph::Graph;

use crate::matrix::Matrix;

/// Immutable tensor view of one (sub)graph.
#[derive(Debug, Clone)]
pub struct GraphTensors {
    /// Number of nodes `N`.
    pub num_nodes: usize,
    /// Node feature matrix `N × d`.
    pub features: Matrix,
    /// Edge sources (influencers), length `E`.
    pub src: Rc<Vec<u32>>,
    /// Edge destinations (influencees), length `E`.
    pub dst: Rc<Vec<u32>>,
    /// IC influence probability `w_vu` per edge.
    pub edge_weight: Rc<Vec<f64>>,
    /// GCN symmetric normalization `1 / sqrt((din(dst)+1)(dout(src)+1))`.
    pub gcn_coeff: Rc<Vec<f64>>,
    /// GCN self-loop coefficient `1 / (din(u)+1)` per node.
    pub gcn_self: Rc<Vec<f64>>,
    /// Mean-aggregator coefficient `1 / din(dst)` per edge.
    pub mean_coeff: Rc<Vec<f64>>,
    /// All-ones coefficient per edge (sum aggregation, GIN).
    pub ones_coeff: Rc<Vec<f64>>,
}

impl GraphTensors {
    /// Builds the tensor bundle for `g` with explicit `features`
    /// (`g.num_nodes() × d`).
    pub fn new(g: &Graph, features: Matrix) -> Self {
        assert_eq!(
            features.rows(),
            g.num_nodes(),
            "feature rows must equal node count"
        );
        let m = g.num_edges();
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        let mut edge_weight = Vec::with_capacity(m);
        let mut gcn_coeff = Vec::with_capacity(m);
        let mut mean_coeff = Vec::with_capacity(m);
        for (v, u, w) in g.edges() {
            src.push(v);
            dst.push(u);
            edge_weight.push(w);
            let norm = (((g.in_degree(u) + 1) * (g.out_degree(v) + 1)) as f64)
                .sqrt()
                .recip();
            gcn_coeff.push(norm);
            mean_coeff.push((g.in_degree(u) as f64).recip());
        }
        let gcn_self: Vec<f64> = g
            .nodes()
            .map(|u| ((g.in_degree(u) + 1) as f64).recip())
            .collect();
        GraphTensors {
            num_nodes: g.num_nodes(),
            features,
            src: Rc::new(src),
            dst: Rc::new(dst),
            edge_weight: Rc::new(edge_weight),
            gcn_coeff: Rc::new(gcn_coeff),
            gcn_self: Rc::new(gcn_self),
            mean_coeff: Rc::new(mean_coeff),
            ones_coeff: Rc::new(vec![1.0; m]),
        }
    }

    /// Builds the bundle with the default structural features
    /// ([`structural_features`]).
    pub fn with_structural_features(g: &Graph, dim: usize) -> Self {
        Self::new(g, structural_features(g, dim))
    }

    /// Builds the bundle for a subgraph whose nodes carry `original_ids`
    /// in the parent graph ([`structural_features_with_ids`]).
    pub fn with_structural_features_for_subgraph(
        g: &Graph,
        dim: usize,
        original_ids: &[u32],
    ) -> Self {
        Self::new(g, structural_features_with_ids(g, dim, original_ids))
    }

    /// Number of edges `E`.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Feature dimensionality `d`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }
}

/// Saturation constant for the degree features: `d / (d + C)`.
const DEGREE_SATURATION: f64 = 10.0;

/// Deterministic per-node pseudo-attribute in `[0, 1)` (splitmix64 of the
/// node's *original* id). Stands in for the node attributes real datasets
/// carry: informative-looking channels the model must learn to discount in
/// favor of structure. They also make model destruction measurable — a
/// noise-wrecked model that weights these channels ranks nodes near
/// randomly instead of accidentally ranking by degree.
pub fn attribute_channel(original_id: u32, channel: u32) -> f64 {
    let mut z = (original_id as u64)
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(channel as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic structural node features.
///
/// The paper trains on subgraphs without attribute features; following the
/// common practice for IM GNNs (Erdős-goes-neural, FastCover), we feed
/// degree-derived structural features. Crucially, every channel uses an
/// *absolute* saturating transform (`d / (d + C)`, `ln(1+d)` squashed the
/// same way) rather than per-graph max normalization: the model trains on
/// small subgraphs and infers on the full graph, and per-graph
/// normalization would shift the feature distribution between the two,
/// forcing the net to extrapolate outside its training range.
pub fn structural_features(g: &Graph, dim: usize) -> Matrix {
    let ids: Vec<u32> = (0..g.num_nodes() as u32).collect();
    structural_features_with_ids(g, dim, &ids)
}

/// [`structural_features`] for a subgraph whose nodes carry `original_ids`
/// from the parent graph: the first four channels are structural (computed
/// on the subgraph), the rest are the nodes' persistent pseudo-attributes
/// ([`attribute_channel`]), which must match between training subgraphs
/// and full-graph inference.
pub fn structural_features_with_ids(g: &Graph, dim: usize, original_ids: &[u32]) -> Matrix {
    assert!(dim >= 1, "feature dim must be at least 1");
    assert_eq!(
        original_ids.len(),
        g.num_nodes(),
        "one original id per node"
    );
    let sat = |d: f64| d / (d + DEGREE_SATURATION);
    Matrix::from_fn(g.num_nodes(), dim, |v, k| {
        let d_in = g.in_degree(v as u32) as f64;
        let d_out = g.out_degree(v as u32) as f64;
        match k {
            0 => sat(d_in),
            1 => sat(d_out),
            2 => 1.0,
            3 => sat((d_in + d_out).ln_1p()),
            _ => attribute_channel(original_ids[v], k as u32 - 4),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 2, 0.25);
        b.build()
    }

    #[test]
    fn tensor_arrays_line_up() {
        let g = tiny();
        let gt = GraphTensors::with_structural_features(&g, 4);
        assert_eq!(gt.num_nodes, 3);
        assert_eq!(gt.num_edges(), 3);
        assert_eq!(gt.src.as_ref(), &vec![0, 0, 1]);
        assert_eq!(gt.dst.as_ref(), &vec![1, 2, 2]);
        assert_eq!(gt.edge_weight.as_ref(), &vec![0.5, 1.0, 0.25]);
        assert_eq!(gt.feature_dim(), 4);
    }

    #[test]
    fn gcn_coeffs_match_formula() {
        let g = tiny();
        let gt = GraphTensors::with_structural_features(&g, 2);
        // Edge 0->1: din(1)=1, dout(0)=2 => 1/sqrt(2*3)
        assert!((gt.gcn_coeff[0] - 1.0 / (6.0f64).sqrt()).abs() < 1e-12);
        // Edge 1->2: din(2)=2, dout(1)=1 => 1/sqrt(3*2)
        assert!((gt.gcn_coeff[2] - 1.0 / (6.0f64).sqrt()).abs() < 1e-12);
        // Self coefficients.
        assert!((gt.gcn_self[0] - 1.0).abs() < 1e-12);
        assert!((gt.gcn_self[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_coeffs_are_inverse_in_degree() {
        let g = tiny();
        let gt = GraphTensors::with_structural_features(&g, 2);
        assert_eq!(gt.mean_coeff[0], 1.0); // din(1) = 1
        assert_eq!(gt.mean_coeff[1], 0.5); // din(2) = 2
        assert_eq!(gt.mean_coeff[2], 0.5);
    }

    #[test]
    fn structural_features_are_bounded_and_deterministic() {
        let g = tiny();
        let f1 = structural_features(&g, 8);
        let f2 = structural_features(&g, 8);
        assert_eq!(f1, f2);
        assert!(f1.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Constant channel.
        for v in 0..3 {
            assert_eq!(f1[(v, 2)], 1.0);
        }
    }

    #[test]
    fn isolated_node_graph_works() {
        let g = Graph::empty(4);
        let gt = GraphTensors::with_structural_features(&g, 3);
        assert_eq!(gt.num_edges(), 0);
        assert!(gt.features.is_finite());
    }
}
