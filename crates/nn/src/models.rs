//! The five GNN architectures evaluated in the paper (Appendix G) plus an
//! MLP baseline.
//!
//! All models share the same contract: `forward` consumes a
//! [`GraphTensors`] bundle and returns an `N × 1` vector of per-node seed
//! probabilities in `(0, 1)` (sigmoid output of the last layer). Hidden
//! layers use ReLU. Each model is built as `in_dim → hidden × (layers − 1)
//! → 1`, matching the paper's three-layer, 32-hidden-unit configuration.
//!
//! - **GCN** — symmetric-normalized sum aggregation with self loops.
//! - **GraphSAGE** — mean aggregation concatenated with the node's own
//!   embedding.
//! - **GAT** — attention over in-edges, softmax-normalized per
//!   *destination* node.
//! - **GRAT** — the FastCover variant the paper defaults to: identical to
//!   GAT except the softmax is normalized per *source* node, so a node
//!   whose coverage overlaps others receives a reduced reward.
//! - **GIN** — sum aggregation with a learnable self-weight `(1 + ω)`
//!   followed by a two-layer MLP.
//! - **MLP** — ignores edges entirely (sanity baseline).

use std::rc::Rc;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph_tensors::GraphTensors;
use crate::params::ParamSet;
use crate::tape::{Tape, Var};

/// Negative slope for attention LeakyReLU (the GAT paper's 0.2).
const ATTENTION_SLOPE: f64 = 0.2;

/// Identifies one of the supported architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Graph Convolutional Network (Kipf & Welling).
    Gcn,
    /// GraphSAGE with mean aggregation (Hamilton et al.).
    GraphSage,
    /// Graph Attention Network (Veličković et al.).
    Gat,
    /// GRAT: GAT with source-normalized attention (Ni et al., FastCover).
    Grat,
    /// Graph Isomorphism Network (Xu et al.).
    Gin,
    /// Edge-blind multi-layer perceptron.
    Mlp,
}

impl ModelKind {
    /// All kinds, in the order Figure 9 of the paper reports them.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::GraphSage,
        ModelKind::Gcn,
        ModelKind::Gat,
        ModelKind::Gin,
        ModelKind::Grat,
        ModelKind::Mlp,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::GraphSage => "GraphSAGE",
            ModelKind::Gat => "GAT",
            ModelKind::Grat => "GRAT",
            ModelKind::Gin => "GIN",
            ModelKind::Mlp => "MLP",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A trainable GNN producing per-node seed probabilities.
pub trait GnnModel {
    /// Architecture name for logs and result tables.
    fn kind(&self) -> ModelKind;

    /// The model's parameters.
    fn params(&self) -> &ParamSet;

    /// Mutable access for optimizers.
    fn params_mut(&mut self) -> &mut ParamSet;

    /// Records the forward pass on `tape` using the bound parameter vars
    /// `pv` (from [`ParamSet::bind`]); returns the `N × 1` probability
    /// vector variable.
    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, pv: &[Var]) -> Var;

    /// Convenience inference: runs `forward` on a throwaway tape and
    /// extracts the probabilities.
    fn seed_probabilities(&self, gt: &GraphTensors) -> Vec<f64> {
        let mut tape = Tape::new();
        let pv = self.params().bind(&mut tape);
        let out = self.forward(&mut tape, gt, &pv);
        tape.value(out).data().to_vec()
    }
}

/// Constructs a model of the given kind.
///
/// `layers` counts message-passing layers (≥ 1); `hidden` is the width of
/// the intermediate layers. The paper uses `layers = 3`, `hidden = 32`.
pub fn build_model<R: Rng + ?Sized>(
    kind: ModelKind,
    in_dim: usize,
    hidden: usize,
    layers: usize,
    rng: &mut R,
) -> Box<dyn GnnModel> {
    assert!(layers >= 1, "need at least one layer");
    assert!(in_dim >= 1 && hidden >= 1, "dims must be positive");
    let dims = layer_dims(in_dim, hidden, layers);
    match kind {
        ModelKind::Gcn => Box::new(Gcn::new(&dims, rng)),
        ModelKind::GraphSage => Box::new(GraphSage::new(&dims, rng)),
        ModelKind::Gat => Box::new(Attention::new(&dims, rng, false)),
        ModelKind::Grat => Box::new(Attention::new(&dims, rng, true)),
        ModelKind::Gin => Box::new(Gin::new(&dims, rng)),
        ModelKind::Mlp => Box::new(Mlp::new(&dims, rng)),
    }
}

fn layer_dims(in_dim: usize, hidden: usize, layers: usize) -> Vec<usize> {
    let mut dims = Vec::with_capacity(layers + 1);
    dims.push(in_dim);
    for _ in 0..layers - 1 {
        dims.push(hidden);
    }
    dims.push(1);
    dims
}

/// Indices of one linear layer's weight and bias in a [`ParamSet`].
#[derive(Debug, Clone, Copy)]
struct Linear {
    w: usize,
    b: usize,
}

impl Linear {
    fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        prefix: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut R,
    ) -> Self {
        Self::with_bias(params, prefix, d_in, d_out, 0.0, rng)
    }

    fn with_bias<R: Rng + ?Sized>(
        params: &mut ParamSet,
        prefix: &str,
        d_in: usize,
        d_out: usize,
        bias_init: f64,
        rng: &mut R,
    ) -> Self {
        let w = params.add_xavier(format!("{prefix}.weight"), d_in, d_out, rng);
        let b = params.add(
            format!("{prefix}.bias"),
            crate::matrix::Matrix::filled(1, d_out, bias_init),
        );
        Linear { w, b }
    }

    fn apply(&self, tape: &mut Tape, pv: &[Var], x: Var) -> Var {
        let z = tape.matmul(x, pv[self.w]);
        tape.add_row_broadcast(z, pv[self.b])
    }
}

/// Negative slope for hidden activations. A plain ReLU can die wholesale on
/// vertex-transitive subgraphs (every node carries identical structural
/// features, so one unlucky sign pattern silences the entire layer); the
/// leaky variant keeps gradients flowing.
const HIDDEN_SLOPE: f64 = 0.01;

/// Initial bias of the output layer. A negative value starts seed
/// probabilities around σ(−3) ≈ 0.05 instead of 0.5: on dense graphs even
/// moderate initial probabilities make every node's survival product
/// vanish (everything is "already covered"), which erases the ranking
/// gradient and lets training settle on arbitrary — sometimes inverted —
/// scores. Starting near zero keeps the coverage term informative from the
/// first step.
const OUTPUT_BIAS_INIT: f64 = -3.0;

fn is_last(l: usize, n_layers: usize) -> f64 {
    if l + 1 == n_layers {
        OUTPUT_BIAS_INIT
    } else {
        0.0
    }
}

/// Output logits are softly bounded to ±`LOGIT_BOUND` via
/// `z ← B·tanh(z/B)` before the sigmoid. DP-SGD noise can otherwise kick
/// the output layer into deep sigmoid saturation where gradients vanish
/// and the model never recovers (a stuck run scores near-random seeds);
/// the tanh squash keeps a recovery gradient at any logit magnitude while
/// leaving the usable probability range (σ(±6) ≈ 0.25%–99.75%) intact.
const LOGIT_BOUND: f64 = 6.0;

fn activate(tape: &mut Tape, z: Var, last: bool) -> Var {
    if last {
        let scaled = tape.scale(z, 1.0 / LOGIT_BOUND);
        let squashed = tape.tanh(scaled);
        let bounded = tape.scale(squashed, LOGIT_BOUND);
        tape.sigmoid(bounded)
    } else {
        tape.leaky_relu(z, HIDDEN_SLOPE)
    }
}

// ---------------------------------------------------------------------
// GCN
// ---------------------------------------------------------------------

/// Graph Convolutional Network (Eqs. 31–32 of the paper's appendix).
pub struct Gcn {
    params: ParamSet,
    linears: Vec<Linear>,
}

impl Gcn {
    /// Builds a GCN with the given `dims` chain (input → … → 1).
    pub fn new<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let n_layers = dims.len() - 1;
        let linears = (0..n_layers)
            .map(|l| {
                Linear::with_bias(
                    &mut params,
                    &format!("gcn{l}"),
                    dims[l],
                    dims[l + 1],
                    is_last(l, n_layers),
                    rng,
                )
            })
            .collect();
        Gcn { params, linears }
    }
}

impl GnnModel for Gcn {
    fn kind(&self) -> ModelKind {
        ModelKind::Gcn
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, pv: &[Var]) -> Var {
        let mut h = tape.leaf(gt.features.clone());
        let n_layers = self.linears.len();
        for (l, lin) in self.linears.iter().enumerate() {
            let agg = tape.spmm_fixed(
                h,
                Rc::clone(&gt.src),
                Rc::clone(&gt.dst),
                Rc::clone(&gt.gcn_coeff),
                gt.num_nodes,
            );
            let self_term = tape.row_scale_fixed(h, Rc::clone(&gt.gcn_self));
            let combined = tape.add(agg, self_term);
            let z = lin.apply(tape, pv, combined);
            h = activate(tape, z, l + 1 == n_layers);
        }
        h
    }
}

// ---------------------------------------------------------------------
// GraphSAGE
// ---------------------------------------------------------------------

/// GraphSAGE with mean aggregation (Eqs. 29–30).
pub struct GraphSage {
    params: ParamSet,
    linears: Vec<Linear>,
}

impl GraphSage {
    /// Builds a GraphSAGE model with the given `dims` chain.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let n_layers = dims.len() - 1;
        let linears = (0..n_layers)
            .map(|l| {
                // The layer consumes [h ‖ mean(h_neighbors)], doubling d_in.
                Linear::with_bias(
                    &mut params,
                    &format!("sage{l}"),
                    2 * dims[l],
                    dims[l + 1],
                    is_last(l, n_layers),
                    rng,
                )
            })
            .collect();
        GraphSage { params, linears }
    }
}

impl GnnModel for GraphSage {
    fn kind(&self) -> ModelKind {
        ModelKind::GraphSage
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, pv: &[Var]) -> Var {
        let mut h = tape.leaf(gt.features.clone());
        let n_layers = self.linears.len();
        for (l, lin) in self.linears.iter().enumerate() {
            let mean = tape.spmm_fixed(
                h,
                Rc::clone(&gt.src),
                Rc::clone(&gt.dst),
                Rc::clone(&gt.mean_coeff),
                gt.num_nodes,
            );
            let cat = tape.concat_cols(h, mean);
            let z = lin.apply(tape, pv, cat);
            h = activate(tape, z, l + 1 == n_layers);
        }
        h
    }
}

// ---------------------------------------------------------------------
// GAT / GRAT
// ---------------------------------------------------------------------

/// Single-head graph attention; `source_normalized` selects GRAT.
///
/// GAT normalizes attention per destination over its in-edges (Eq. 35);
/// GRAT normalizes per source over its out-edges (Eq. 39), which penalizes
/// a source whose coverage overlaps others — the property the paper credits
/// for GRAT's edge in IM tasks.
pub struct Attention {
    params: ParamSet,
    /// `heads[l][h]` — one transform per layer per head.
    linears: Vec<Vec<Linear>>,
    /// `att[l][h]` — attention vector parameter per layer per head.
    att: Vec<Vec<usize>>,
    source_normalized: bool,
}

impl Attention {
    /// Builds a single-head GAT (`source_normalized = false`) or GRAT
    /// (`true`).
    pub fn new<R: Rng + ?Sized>(dims: &[usize], rng: &mut R, source_normalized: bool) -> Self {
        Self::with_heads(dims, rng, source_normalized, 1)
    }

    /// Multi-head variant: each layer runs `heads` independent attention
    /// heads over the same `d_out` width and *averages* them (the original
    /// GAT averages on the output layer; averaging everywhere keeps layer
    /// widths independent of the head count).
    pub fn with_heads<R: Rng + ?Sized>(
        dims: &[usize],
        rng: &mut R,
        source_normalized: bool,
        heads: usize,
    ) -> Self {
        assert!(heads >= 1, "need at least one attention head");
        let mut params = ParamSet::new();
        let mut linears = Vec::new();
        let mut att = Vec::new();
        let prefix = if source_normalized { "grat" } else { "gat" };
        let n_layers = dims.len() - 1;
        for l in 0..n_layers {
            let mut layer_linears = Vec::with_capacity(heads);
            let mut layer_att = Vec::with_capacity(heads);
            for h in 0..heads {
                layer_linears.push(Linear::with_bias(
                    &mut params,
                    &format!("{prefix}{l}.h{h}"),
                    dims[l],
                    dims[l + 1],
                    is_last(l, n_layers),
                    rng,
                ));
                layer_att.push(params.add_xavier(
                    format!("{prefix}{l}.h{h}.att"),
                    2 * dims[l + 1],
                    1,
                    rng,
                ));
            }
            linears.push(layer_linears);
            att.push(layer_att);
        }
        Attention {
            params,
            linears,
            att,
            source_normalized,
        }
    }

    /// One attention head's aggregation for the current layer.
    fn head_forward(
        &self,
        tape: &mut Tape,
        gt: &GraphTensors,
        pv: &[Var],
        h: Var,
        lin: &Linear,
        att_param: usize,
    ) -> Var {
        let wh = {
            let z = tape.matmul(h, pv[lin.w]);
            tape.add_row_broadcast(z, pv[lin.b])
        };
        let agg = if gt.num_edges() > 0 {
            let hs = tape.gather_rows(wh, Rc::clone(&gt.src));
            let hd = tape.gather_rows(wh, Rc::clone(&gt.dst));
            let cat = tape.concat_cols(hs, hd);
            let scores = tape.matmul(cat, pv[att_param]);
            let scores = tape.leaky_relu(scores, ATTENTION_SLOPE);
            let group = if self.source_normalized {
                Rc::clone(&gt.src)
            } else {
                Rc::clone(&gt.dst)
            };
            let alpha = tape.segment_softmax(scores, group, gt.num_nodes);
            let msg = tape.row_mul(hs, alpha);
            tape.scatter_add_rows(msg, Rc::clone(&gt.dst), gt.num_nodes)
        } else {
            tape.scale(wh, 0.0)
        };
        // Residual self connection keeps isolated nodes informative and
        // plays the role of GAT's customary self-loop.
        tape.add(agg, wh)
    }
}

impl GnnModel for Attention {
    fn kind(&self) -> ModelKind {
        if self.source_normalized {
            ModelKind::Grat
        } else {
            ModelKind::Gat
        }
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, pv: &[Var]) -> Var {
        let mut h = tape.leaf(gt.features.clone());
        let n_layers = self.linears.len();
        for l in 0..n_layers {
            let head_outputs: Vec<Var> = self.linears[l]
                .iter()
                .zip(&self.att[l])
                .map(|(lin, &att)| self.head_forward(tape, gt, pv, h, lin, att))
                .collect();
            let mut z = head_outputs[0];
            for &extra in &head_outputs[1..] {
                z = tape.add(z, extra);
            }
            if head_outputs.len() > 1 {
                z = tape.scale(z, 1.0 / head_outputs.len() as f64);
            }
            h = activate(tape, z, l + 1 == n_layers);
        }
        h
    }
}

// ---------------------------------------------------------------------
// GIN
// ---------------------------------------------------------------------

/// Graph Isomorphism Network (Eqs. 41–42): sum aggregation plus a
/// learnable `(1 + ω)` self weight, combined through a two-layer MLP.
pub struct Gin {
    params: ParamSet,
    mlp1: Vec<Linear>,
    mlp2: Vec<Linear>,
    omega: Vec<usize>,
}

impl Gin {
    /// Builds a GIN with the given `dims` chain.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let mut mlp1 = Vec::new();
        let mut mlp2 = Vec::new();
        let mut omega = Vec::new();
        let n_layers = dims.len() - 1;
        for l in 0..n_layers {
            let mid = dims[l].max(dims[l + 1]);
            mlp1.push(Linear::new(
                &mut params,
                &format!("gin{l}.mlp1"),
                dims[l],
                mid,
                rng,
            ));
            mlp2.push(Linear::with_bias(
                &mut params,
                &format!("gin{l}.mlp2"),
                mid,
                dims[l + 1],
                is_last(l, n_layers),
                rng,
            ));
            omega.push(params.add(format!("gin{l}.omega"), crate::matrix::Matrix::scalar(0.0)));
        }
        Gin {
            params,
            mlp1,
            mlp2,
            omega,
        }
    }
}

impl GnnModel for Gin {
    fn kind(&self) -> ModelKind {
        ModelKind::Gin
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, pv: &[Var]) -> Var {
        let mut h = tape.leaf(gt.features.clone());
        let n_layers = self.mlp1.len();
        for l in 0..n_layers {
            let agg = tape.spmm_fixed(
                h,
                Rc::clone(&gt.src),
                Rc::clone(&gt.dst),
                Rc::clone(&gt.ones_coeff),
                gt.num_nodes,
            );
            let one_plus = tape.add_scalar(pv[self.omega[l]], 1.0);
            let self_term = tape.scale_by_var(h, one_plus);
            let s = tape.add(agg, self_term);
            let z1 = self.mlp1[l].apply(tape, pv, s);
            let z1 = tape.leaky_relu(z1, HIDDEN_SLOPE);
            let z2 = self.mlp2[l].apply(tape, pv, z1);
            h = activate(tape, z2, l + 1 == n_layers);
        }
        h
    }
}

// ---------------------------------------------------------------------
// MLP
// ---------------------------------------------------------------------

/// Edge-blind per-node MLP; lower-bound baseline showing how much of the
/// signal comes from structure.
pub struct Mlp {
    params: ParamSet,
    linears: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given `dims` chain.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let n_layers = dims.len() - 1;
        let linears = (0..n_layers)
            .map(|l| {
                Linear::with_bias(
                    &mut params,
                    &format!("mlp{l}"),
                    dims[l],
                    dims[l + 1],
                    is_last(l, n_layers),
                    rng,
                )
            })
            .collect();
        Mlp { params, linears }
    }
}

impl GnnModel for Mlp {
    fn kind(&self) -> ModelKind {
        ModelKind::Mlp
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward(&self, tape: &mut Tape, gt: &GraphTensors, pv: &[Var]) -> Var {
        let mut h = tape.leaf(gt.features.clone());
        let n_layers = self.linears.len();
        for (l, lin) in self.linears.iter().enumerate() {
            let z = lin.apply(tape, pv, h);
            h = activate(tape, z, l + 1 == n_layers);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> privim_graph::Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as u32, ((i + 1) % n) as u32, 1.0);
        }
        b.build()
    }

    fn check_model(kind: ModelKind) {
        let g = ring(6);
        let gt = GraphTensors::with_structural_features(&g, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let model = build_model(kind, 4, 8, 3, &mut rng);
        assert_eq!(model.kind(), kind);

        let probs = model.seed_probabilities(&gt);
        assert_eq!(probs.len(), 6);
        assert!(
            probs.iter().all(|&p| (0.0..=1.0).contains(&p)),
            "{kind}: probs out of range"
        );

        // Gradients must flow into every weight parameter for a generic loss.
        let mut tape = Tape::new();
        let pv = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &gt, &pv);
        let loss = tape.sum(out);
        let grads = tape.backward(loss);
        let gv = model.params().grads(&pv, grads);
        assert!(gv.is_finite());
        let n_weight_grads = gv
            .blocks()
            .iter()
            .zip(model.params().iter())
            .filter(|(b, p)| p.name.contains("weight") && b.frobenius_norm() > 0.0)
            .count();
        assert!(n_weight_grads > 0, "{kind}: no weight gradient flowed");
    }

    #[test]
    fn all_models_forward_and_backward() {
        for kind in ModelKind::ALL {
            check_model(kind);
        }
    }

    #[test]
    fn models_handle_edgeless_graphs() {
        let g = privim_graph::Graph::empty(5);
        let gt = GraphTensors::with_structural_features(&g, 4);
        let mut rng = StdRng::seed_from_u64(5);
        for kind in ModelKind::ALL {
            let model = build_model(kind, 4, 8, 2, &mut rng);
            let probs = model.seed_probabilities(&gt);
            assert_eq!(probs.len(), 5, "{kind}");
            assert!(probs.iter().all(|p| p.is_finite()), "{kind}");
        }
    }

    #[test]
    fn grat_differs_from_gat_on_asymmetric_graph() {
        // A graph where out-degrees differ strongly so source vs destination
        // normalization produces different attention.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 3, 1.0);
        b.add_edge(1, 3, 1.0);
        let g = b.build();
        let gt = GraphTensors::with_structural_features(&g, 4);
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let gat = build_model(ModelKind::Gat, 4, 8, 2, &mut rng1);
        let grat = build_model(ModelKind::Grat, 4, 8, 2, &mut rng2);
        // Same init (same seed, same shapes), different normalization.
        let pa = gat.seed_probabilities(&gt);
        let pg = grat.seed_probabilities(&gt);
        assert_ne!(pa, pg);
    }

    #[test]
    fn single_layer_models_output_directly() {
        let g = ring(4);
        let gt = GraphTensors::with_structural_features(&g, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let model = build_model(ModelKind::Gcn, 4, 8, 1, &mut rng);
        let probs = model.seed_probabilities(&gt);
        assert_eq!(probs.len(), 4);
    }

    #[test]
    fn model_kind_names_and_display() {
        assert_eq!(ModelKind::Grat.to_string(), "GRAT");
        assert_eq!(ModelKind::ALL.len(), 6);
        let unique: std::collections::HashSet<_> =
            ModelKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn multi_head_attention_works_and_differs_from_single() {
        let g = ring(6);
        let gt = GraphTensors::with_structural_features(&g, 4);
        let mut r1 = StdRng::seed_from_u64(31);
        let mut r2 = StdRng::seed_from_u64(31);
        let single = Attention::with_heads(&[4, 8, 1], &mut r1, true, 1);
        let multi = Attention::with_heads(&[4, 8, 1], &mut r2, true, 4);
        assert_eq!(multi.params().len(), 4 * single.params().len());
        let ps = single.seed_probabilities(&gt);
        let pm = multi.seed_probabilities(&gt);
        assert_eq!(pm.len(), 6);
        assert!(pm.iter().all(|p| (0.0..=1.0).contains(p)));
        assert_ne!(ps, pm);
        // Gradients flow into every head.
        let mut tape = Tape::new();
        let pv = multi.params().bind(&mut tape);
        let out = multi.forward(&mut tape, &gt, &pv);
        let loss = tape.sum(out);
        let grads = tape.backward(loss);
        let gv = multi.params().grads(&pv, grads);
        let live_heads = gv
            .blocks()
            .iter()
            .zip(multi.params().iter())
            .filter(|(b, p)| p.name.contains("weight") && b.frobenius_norm() > 0.0)
            .count();
        assert!(
            live_heads >= 4,
            "only {live_heads} head weights received gradient"
        );
    }

    #[test]
    fn deterministic_construction_given_seed() {
        let g = ring(5);
        let gt = GraphTensors::with_structural_features(&g, 4);
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        let m1 = build_model(ModelKind::Gin, 4, 8, 3, &mut r1);
        let m2 = build_model(ModelKind::Gin, 4, 8, 3, &mut r2);
        assert_eq!(m1.seed_probabilities(&gt), m2.seed_probabilities(&gt));
    }
}
