//! Property-based tests for the tensor/autograd substrate.

use proptest::prelude::*;

use privim_nn::matrix::Matrix;
use privim_nn::params::{GradVec, ParamSet};
use privim_nn::tape::Tape;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(4, 2),
    ) {
        // A(B + C) = AB + AC
        let bc = b.zip_map(&c, |x, y| x + y);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_reverses_matmul(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        // (AB)^T = B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert_eq!(lhs.data(), rhs.data());
    }

    #[test]
    fn matmul_nt_tn_consistent(a in arb_matrix(3, 4), b in arb_matrix(5, 4)) {
        let direct = a.matmul(&b.transpose());
        let fused = a.matmul_nt(&b);
        for (x, y) in direct.data().iter().zip(fused.data()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in arb_matrix(4, 4), b in arb_matrix(4, 4)) {
        let sum = a.zip_map(&b, |x, y| x + y);
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn clip_is_idempotent_and_bounding(entries in proptest::collection::vec(-5.0f64..5.0, 12), c in 0.1f64..10.0) {
        let mut params = ParamSet::new();
        params.add("w", Matrix::zeros(3, 4));
        let mut g = GradVec::from_blocks(vec![Matrix::from_vec(3, 4, entries)]);
        g.clip(c);
        let after_first = g.clone();
        prop_assert!(g.l2_norm() <= c + 1e-9);
        // Idempotent up to one ulp of rescaling: the first clip may land an
        // epsilon above `c`, making the second apply a ~(1 − 1e-16) factor.
        g.clip(c);
        for (a, b) in g.blocks()[0].data().iter().zip(after_first.blocks()[0].data()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn clip_preserves_direction(entries in proptest::collection::vec(-5.0f64..5.0, 8)) {
        let original = Matrix::from_vec(2, 4, entries.clone());
        if original.frobenius_norm() < 1e-9 {
            return Ok(());
        }
        let mut g = GradVec::from_blocks(vec![original.clone()]);
        let pre = g.clip(0.5);
        // Scaled version must be parallel: g = (0.5/pre or 1) * original.
        let scale = if pre > 0.5 { 0.5 / pre } else { 1.0 };
        for (a, b) in g.blocks()[0].data().iter().zip(original.data()) {
            prop_assert!((a - scale * b).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_gradient_is_all_ones_through_linear_ops(a in arb_matrix(3, 3), c in -2.0f64..2.0) {
        let mut t = Tape::new();
        let v = t.leaf(a);
        let s = t.scale(v, c);
        let s = t.add_scalar(s, 1.5);
        let loss = t.sum(s);
        let g = t.backward(loss);
        for &x in g.get(v).unwrap().data() {
            prop_assert!((x - c).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_output_in_unit_interval(a in arb_matrix(4, 2)) {
        let mut t = Tape::new();
        let v = t.leaf(a);
        let y = t.sigmoid(v);
        prop_assert!(t.value(y).data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment(
        scores in proptest::collection::vec(-50.0f64..50.0, 10),
        segs in proptest::collection::vec(0u32..3, 10),
    ) {
        let mut t = Tape::new();
        let s = t.leaf(Matrix::from_vec(10, 1, scores));
        let seg = std::rc::Rc::new(segs.clone());
        let y = t.segment_softmax(s, seg, 3);
        let mut sums = [0.0f64; 3];
        for (e, &g) in segs.iter().enumerate() {
            sums[g as usize] += t.value(y)[(e, 0)];
        }
        for (g, &total) in sums.iter().enumerate() {
            let present = segs.iter().any(|&x| x as usize == g);
            if present {
                prop_assert!((total - 1.0).abs() < 1e-9, "segment {} sums to {}", g, total);
            } else {
                prop_assert_eq!(total, 0.0);
            }
        }
    }
}
