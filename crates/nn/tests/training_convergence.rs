//! Convergence tests: every architecture must be able to fit a simple,
//! well-posed objective. These catch broken gradients or dead
//! parameterizations that forward/backward shape tests cannot.

use std::rc::Rc;

use privim_graph::GraphBuilder;
use privim_nn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two out-stars: hubs 0 and 7 with five / four spokes. The target
/// function is "score the hubs high, spokes low".
fn two_hubs() -> (privim_graph::Graph, Vec<f64>) {
    let mut b = GraphBuilder::new(12);
    for i in 1..=5 {
        b.add_edge(0, i, 1.0);
    }
    for i in 8..=11 {
        b.add_edge(7, i, 1.0);
    }
    b.add_edge(6, 0, 1.0); // some in-edges so degrees differ
    let g = b.build();
    let mut target = vec![0.05f64; 12];
    target[0] = 0.95;
    target[7] = 0.95;
    (g, target)
}

/// Squared-error loss between model output and the target vector.
fn mse_loss(tape: &mut Tape, out: Var, target: &[f64]) -> Var {
    let t = tape.leaf(Matrix::from_vec(target.len(), 1, target.to_vec()));
    let diff = tape.sub(out, t);
    let sq = tape.mul(diff, diff);
    tape.sum(sq)
}

fn train_to_target(kind: ModelKind, seed: u64) -> (f64, f64) {
    let (g, target) = two_hubs();
    let gt = GraphTensors::with_structural_features(&g, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = build_model(kind, 4, 8, 2, &mut rng);
    let mut opt = Adam::new(0.05);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..300 {
        let mut tape = Tape::new();
        let pv = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &gt, &pv);
        let loss = mse_loss(&mut tape, out, &target);
        last = tape.value(loss).as_scalar();
        first.get_or_insert(last);
        let grads = tape.backward(loss);
        let gv = model.params().grads(&pv, grads);
        opt.step(model.params_mut(), &gv);
    }
    (first.unwrap(), last)
}

#[test]
fn every_architecture_fits_the_hub_target() {
    for kind in [
        ModelKind::Gcn,
        ModelKind::GraphSage,
        ModelKind::Gat,
        ModelKind::Grat,
        ModelKind::Gin,
        ModelKind::Mlp,
    ] {
        let (first, last) = train_to_target(kind, 3);
        assert!(
            last < first * 0.5,
            "{kind}: loss barely moved ({first:.4} -> {last:.4})"
        );
        // GAT/GraphSAGE mean-style aggregation struggles to express the
        // degree signal this target encodes (the same limitation Figure 9
        // measures); they must still fit most of it.
        let bound = match kind {
            ModelKind::Gat | ModelKind::GraphSage => 1.2,
            _ => 0.6,
        };
        assert!(
            last < bound,
            "{kind}: did not fit the target (final loss {last:.4})"
        );
    }
}

#[test]
fn trained_model_ranks_hubs_first() {
    let (g, target) = two_hubs();
    let gt = GraphTensors::with_structural_features(&g, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = build_model(ModelKind::Grat, 4, 8, 2, &mut rng);
    let mut opt = Adam::new(0.05);
    for _ in 0..300 {
        let mut tape = Tape::new();
        let pv = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &gt, &pv);
        let loss = mse_loss(&mut tape, out, &target);
        let grads = tape.backward(loss);
        let gv = model.params().grads(&pv, grads);
        opt.step(model.params_mut(), &gv);
    }
    let scores = model.seed_probabilities(&gt);
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let top2: Vec<usize> = order[..2].to_vec();
    assert!(
        top2.contains(&0) && top2.contains(&7),
        "top-2 {top2:?} should be the hubs"
    );
}

#[test]
fn sgd_also_converges_slower_but_surely() {
    let (g, target) = two_hubs();
    let gt = GraphTensors::with_structural_features(&g, 4);
    let mut rng = StdRng::seed_from_u64(9);
    let mut model = build_model(ModelKind::Gcn, 4, 8, 2, &mut rng);
    let mut opt = Sgd::new(0.1);
    let mut losses = Vec::new();
    for _ in 0..400 {
        let mut tape = Tape::new();
        let pv = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &gt, &pv);
        let loss = mse_loss(&mut tape, out, &target);
        losses.push(tape.value(loss).as_scalar());
        let grads = tape.backward(loss);
        let gv = model.params().grads(&pv, grads);
        opt.step(model.params_mut(), &gv);
    }
    assert!(
        losses.last().unwrap() < &(losses[0] * 0.6),
        "{:?}",
        (losses[0], losses.last())
    );
}

#[test]
fn gradient_descent_on_neighbor_survival_selects_hub() {
    // Directly optimize the Eq. 5-style objective over raw probabilities
    // (no network): gradient descent should allocate seed mass to the hub.
    let (g, _) = two_hubs();
    let gt = GraphTensors::with_structural_features(&g, 4);
    let mut x = Matrix::filled(12, 1, 0.1);
    for _ in 0..400 {
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let survive = tape.neighbor_survival(
            xv,
            Rc::clone(&gt.src),
            Rc::clone(&gt.dst),
            Rc::clone(&gt.edge_weight),
            gt.num_nodes,
        );
        let not_seed = tape.one_minus(xv);
        let uninfluenced = tape.mul(not_seed, survive);
        let total = tape.sum(uninfluenced);
        let mass = tape.sum(xv);
        let penalty = tape.scale(mass, 0.4);
        let loss = tape.add(total, penalty);
        let grads = tape.backward(loss);
        let gx = grads.get(xv).unwrap();
        for (xi, gi) in x.data_mut().iter_mut().zip(gx.data()) {
            *xi = (*xi - 0.05 * gi).clamp(0.0, 1.0);
        }
    }
    // The hubs must carry (near-)full seed mass; spokes must not. Node 6
    // (which nothing covers) legitimately also keeps mass — covering
    // itself is its only option — so assert values, not a strict top-2.
    let xs = x.data();
    assert!(xs[0] > 0.9 && xs[7] > 0.9, "hub mass too low: {xs:?}");
    for spoke in [1usize, 2, 3, 4, 5, 8, 9, 10, 11] {
        assert!(xs[spoke] < 0.5, "spoke {spoke} kept mass: {xs:?}");
    }
}
