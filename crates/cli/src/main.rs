//! `privim` — command-line front end for the PrivIM reproduction.
//!
//! Subcommands: `generate` (synthetic dataset replicas), `train`
//! (DP-GNN training + seed selection + checkpoint), `select` (seed
//! selection from a saved checkpoint), `evaluate` (influence spread of a
//! seed set), `account` (privacy-accounting numbers), `audit` (empirical
//! membership/topology attacks against trained checkpoints), `serve`
//! (threaded HTTP inference server over a saved checkpoint, or over a
//! crash-safe checkpoint store with `--follow` hot-swap reload), `route`
//! (replicated-tier front-end with health checks, circuit breakers,
//! retries and hedging), `chaos` (deterministic TCP fault-injection
//! proxy), `monitor` (text dashboard over a telemetry file or a live
//! `/metrics` endpoint), `trace-view` (assemble span-export files or a
//! live router's `/debug/tier-trace` into cross-process trace trees
//! with per-hop latency decomposition). Run `privim help` for usage.

mod args;
mod monitor;

use std::process::ExitCode;
use std::sync::Arc;

use args::{Command, ObsArgs, USAGE};
use privim_core::config::PrivImConfig;
use privim_core::pipeline::run_method;
use privim_core::train::{NoiseKind, PrivacySetup};
use privim_datasets::split::NodeSplit;
use privim_dp::rdp::{calibrate_sigma, RdpAccountant, SubsampledConfig};
use privim_graph::{io, Graph};
use privim_im::metrics::top_k_seeds;
use privim_im::models::DiffusionConfig;
use privim_im::spread::influence_spread;
use privim_nn::graph_tensors::GraphTensors;
use privim_nn::serialize::Checkpoint;
use privim_obs::{console, console_err};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = exec(&argv);
    privim_obs::flush_sinks();
    code
}

fn exec(argv: &[String]) -> ExitCode {
    let (argv, obs) = match args::split_obs_args(argv) {
        Ok(split) => split,
        Err(msg) => {
            console_err(format!("error: {msg}"));
            return ExitCode::from(2);
        }
    };
    // Span exports are tagged with the subcommand name ("route",
    // "serve", ...) so `trace-view` can tell the tier's processes apart.
    let process = argv.first().cloned().unwrap_or_else(|| "privim".into());
    if let Err(msg) = init_observability(&obs, &process) {
        console_err(format!("error: {msg}"));
        return ExitCode::from(2);
    }
    let command = match args::parse_command(&argv) {
        Ok(c) => c,
        Err(msg) => {
            console_err(format!("error: {msg}"));
            return ExitCode::from(2);
        }
    };
    let code = match run(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            console_err(format!("error: {msg}"));
            ExitCode::FAILURE
        }
    };
    write_observability_outputs(&obs);
    code
}

/// Installs the stderr and JSONL sinks requested by the global flags (or
/// the `PRIVIM_LOG` environment variable) and enables the profiler when
/// asked. With nothing configured this installs nothing and telemetry
/// stays at its zero-overhead default.
fn init_observability(obs: &ObsArgs, process: &str) -> Result<(), String> {
    if let Some(level) = obs.effective_level() {
        privim_obs::install_sink(Arc::new(privim_obs::StderrSink::new(level)));
    }
    if let Some(path) = &obs.telemetry_out {
        let sink = privim_obs::JsonlSink::create(path)
            .map_err(|e| format!("cannot create telemetry file {path}: {e}"))?;
        privim_obs::install_sink(Arc::new(sink));
    }
    privim_obs::set_profiling(obs.profile);
    if let Some(path) = &obs.recorder_out {
        privim_obs::FlightRecorder::set_dump_path(Some(path.into()));
        privim_obs::FlightRecorder::arm();
        privim_obs::FlightRecorder::install_panic_hook();
    }
    if let Some((site, hit)) = &obs.chaos_kill {
        privim_obs::set_fault_plan(privim_obs::FaultPlan::kill_after(site, *hit));
    }
    if let Some(path) = &obs.span_export {
        privim_obs::arm_span_export(process, path)
            .map_err(|e| format!("cannot create span-export file {path}: {e}"))?;
    }
    Ok(())
}

/// Writes the export files requested by `--profile-out`, `--metrics-out`
/// and `--report-out` once the command has finished, and under
/// `--profile` prints the call tree to stderr. Export failures warn but
/// never change the exit code: the run itself already succeeded.
fn write_observability_outputs(obs: &ObsArgs) {
    privim_obs::flush_sinks();
    let profile = privim_obs::profile_report();
    if obs.profile && !profile.is_empty() {
        eprintln!("\nprofile (total time, self time, calls):");
        eprint!("{}", profile.render_table());
    }
    let mut write = |path: &str, what: &str, content: String| {
        if let Err(e) = std::fs::write(path, content) {
            console_err(format!("warning: cannot write {what} to {path}: {e}"));
        }
    };
    if let Some(path) = &obs.profile_out {
        write(path, "flamegraph", profile.render_flamegraph());
    }
    if let Some(path) = &obs.metrics_out {
        let text = privim_obs::render_prometheus_with_profile(&privim_obs::snapshot(), &profile);
        write(path, "metrics", text);
    }
    if let Some(path) = &obs.report_out {
        // The HTML report is richest when the event stream is on disk:
        // re-parse it so phases, epochs and the privacy ledger render too.
        let telemetry = obs
            .telemetry_out
            .as_ref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .and_then(|text| privim_obs::RunTelemetry::from_jsonl(&text).ok());
        let html = privim_obs::render_html_report(
            "privim run",
            telemetry.as_ref(),
            &privim_obs::snapshot(),
            &profile,
        );
        write(path, "HTML report", html);
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            console(USAGE);
            Ok(())
        }
        Command::Generate(a) => {
            privim_obs::info!("run", "start", command = "generate", seed = a.seed);
            let g = a.dataset.generate(a.scale, a.seed);
            let stats = privim_graph::stats::graph_stats(&g);
            save_graph(&g, &a.output)?;
            console(format!(
                "wrote {}: {} nodes, {} edges, avg degree {:.2}",
                a.output, stats.num_nodes, stats.num_edges, stats.avg_degree
            ));
            Ok(())
        }
        Command::Train(a) => {
            privim_obs::info!(
                "run",
                "start",
                command = "train",
                seed = a.seed,
                method = a.method.name(),
            );
            let g = load_graph(&a.graph)?;
            // The split is the first draw from StdRng(a.seed); recording
            // (seed, fraction) in the checkpoint lets a later audit
            // reconstruct the exact train/test membership ground truth.
            let train_fraction = 0.5;
            let mut rng = StdRng::seed_from_u64(a.seed);
            let split = NodeSplit::random(&g, train_fraction, &mut rng);
            let provenance = privim_core::checkpoint::SplitProvenance {
                split_seed: a.seed,
                train_fraction,
            };
            let config = PrivImConfig {
                epsilon: a.epsilon,
                model: a.model,
                seed_size: a.seed_size.min(g.num_nodes()),
                iterations: a.iterations,
                batch_size: 32,
                hidden: 16,
                subgraph_size: 20,
                hops: 2,
                learning_rate: 0.02,
                ..PrivImConfig::default()
            };
            if a.resume.is_some() || a.checkpoint_dir.is_some() {
                return train_crash_safe(&g, &a, &config, &split.train, provenance);
            }
            let result = privim_core::pipeline::run_method_with_candidates(
                &g,
                a.method,
                &config,
                &split.train,
                a.seed,
            );
            console(format!(
                "{}: spread {:.0} over {} nodes | container {} subgraphs | sigma {}",
                a.method.name(),
                result.spread,
                g.num_nodes(),
                result.container_size,
                result
                    .sigma
                    .map_or("- (non-private)".to_string(), |s| format!("{s:.3}")),
            ));
            console(format!("seeds: {:?}", result.seeds));
            if let Some(path) = a.checkpoint.clone() {
                // run_method trains internally but does not expose the
                // model; retrain deterministically here to capture one.
                let cp = train_for_checkpoint(&g, &a, &config)?;
                cp.save(&path).map_err(|e| e.to_string())?;
                console(format!("checkpoint written to {path}"));
            }
            let _ = run_method; // `run_method_with_candidates` covers it
            Ok(())
        }
        Command::Select(a) => {
            let g = load_graph(&a.graph)?;
            let cp = Checkpoint::load(&a.checkpoint).map_err(|e| e.to_string())?;
            let model = cp.restore().map_err(|e| e.to_string())?;
            let gt = GraphTensors::with_structural_features(&g, cp.in_dim);
            let scores = model.seed_probabilities(&gt);
            let seeds = top_k_seeds(&scores, a.seed_size);
            console(format!("seeds: {seeds:?}"));
            Ok(())
        }
        Command::Evaluate(a) => {
            privim_obs::info!("run", "start", command = "evaluate", seed = 7u64);
            let g = load_graph(&a.graph)?;
            for &s in &a.seeds {
                if s as usize >= g.num_nodes() {
                    return Err(format!(
                        "seed {s} out of range (graph has {} nodes)",
                        g.num_nodes()
                    ));
                }
            }
            let cfg = DiffusionConfig {
                model: privim_im::models::DiffusionModel::IndependentCascade,
                max_steps: a.steps,
            };
            let mut rng = StdRng::seed_from_u64(7);
            let spread = influence_spread(&g, &a.seeds, &cfg, a.trials, &mut rng);
            console(format!(
                "influence spread of {} seeds: {spread:.1} of {} nodes ({:.1}%)",
                a.seeds.len(),
                g.num_nodes(),
                100.0 * spread / g.num_nodes() as f64
            ));
            Ok(())
        }
        Command::Account(a) => {
            let config = SubsampledConfig {
                max_occurrences: a.occurrences,
                batch_size: a.batch,
                container_size: a.container,
            };
            let sigma = calibrate_sigma(a.epsilon, a.delta, &config, a.iterations);
            let mut acct = RdpAccountant::default();
            acct.compose_subsampled_gaussian(sigma, &config, a.iterations);
            let (spent, alpha) = acct.epsilon(a.delta);
            console(format!(
                "target (eps, delta) = ({}, {:.1e}) over T = {} iterations",
                a.epsilon, a.delta, a.iterations
            ));
            console(format!("  noise multiplier sigma = {sigma:.4}"));
            console(format!(
                "  absolute noise std (C = 1) = sigma * N_g = {:.2}",
                sigma * a.occurrences as f64
            ));
            console(format!(
                "  spent epsilon = {spent:.4} (optimal RDP order alpha = {alpha})"
            ));
            if let Some(path) = &a.checkpoint {
                let cp = Checkpoint::load(path).map_err(|e| e.to_string())?;
                console(format!("  checkpoint digest = {}", cp.digest_hex()));
            }
            Ok(())
        }
        Command::Audit(a) => audit(&a),
        Command::Serve(a) => serve(&a),
        Command::Route(a) => route(&a),
        Command::Chaos(a) => chaos(&a),
        Command::Monitor(a) => monitor::run(&a),
        Command::TraceView(a) => trace_view(&a),
    }
}

/// Assembles exported spans into cross-process trace trees and prints
/// them with per-hop latency decomposition tables. File mode merges the
/// given span-export JSONL files offline; `--addr` asks a live router
/// for its already-assembled `/debug/tier-trace` view (which fans out to
/// the replicas' `/debug/spans` endpoints).
fn trace_view(a: &args::TraceViewArgs) -> Result<(), String> {
    if let Some(addr) = &a.addr {
        use std::time::Duration;
        let mut path = "/debug/tier-trace".to_string();
        if let Some(id) = &a.request_id {
            path = format!("{path}?request_id={id}");
        } else if let Some(t) = &a.trace {
            path = format!("{path}?trace={t}");
        }
        let mut client =
            privim_serve::HttpClient::with_timeout(addr.as_str(), Duration::from_secs(5))
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let resp = client
            .get(&path)
            .map_err(|e| format!("GET {path} on {addr} failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!("GET {path} on {addr}: HTTP {}", resp.status));
        }
        console(String::from_utf8_lossy(&resp.body).into_owned());
        return Ok(());
    }
    let mut records = Vec::new();
    for file in &a.spans {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read span file {file}: {e}"))?;
        records.extend(privim_obs::parse_spans_jsonl(&text));
    }
    let filter = if let Some(id) = &a.request_id {
        Some(privim_obs::TraceContext::from_request_id(id).trace_id)
    } else if let Some(t) = &a.trace {
        Some(u128::from_str_radix(t, 16).map_err(|e| format!("bad --trace: {e}"))?)
    } else {
        None
    };
    console(privim_obs::render_tier_traces(&records, filter));
    Ok(())
}

/// Runs the empirical privacy attacks against the swept checkpoint
/// directories and prints one line per attack × mode × checkpoint.
/// `--json` additionally writes the standard bench envelope, which is
/// byte-identical across runs with the same seed and inputs.
fn audit(a: &args::AuditArgs) -> Result<(), String> {
    privim_obs::info!("run", "start", command = "audit", seed = a.seed);
    let g = load_graph(&a.graph)?;
    let cfg = privim_audit::AuditConfig {
        attack: match a.attack {
            args::AuditAttack::Membership => privim_audit::Attack::Membership,
            args::AuditAttack::Topology => privim_audit::Attack::Topology,
            args::AuditAttack::Both => privim_audit::Attack::Both,
        },
        mode: match a.mode {
            args::AuditMode::WhiteBox => privim_audit::Mode::WhiteBox,
            args::AuditMode::BlackBox => privim_audit::Mode::BlackBox,
            args::AuditMode::Both => privim_audit::Mode::Both,
        },
        seed: a.seed,
        low_fpr: a.low_fpr,
        max_pairs: a.max_pairs,
        addr: a.addr.clone(),
    };
    let rows = privim_audit::run_audit(&g, &a.checkpoint_dirs, &cfg)?;
    for r in &rows {
        let eps = r
            .epsilon
            .map(|e| format!("{e:.3}"))
            .unwrap_or_else(|| "-".into());
        let metrics: Vec<String> = r
            .metrics
            .iter()
            .map(|(k, v)| format!("{k}={v:.4}"))
            .collect();
        console(format!(
            "{:<10} {:<9} {:<16} eps={:<9} digest={} {}",
            r.attack,
            r.mode,
            r.label,
            eps,
            r.digest,
            metrics.join(" ")
        ));
    }
    if let Some(path) = &a.json {
        let counters = privim_obs::snapshot().counters;
        let envelope = privim_audit::render_envelope(a.seed, &rows, &counters);
        std::fs::write(path, &envelope).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// Runs the inference server until SIGINT/SIGTERM, then drains in-flight
/// requests and exits cleanly. Serving is post-processing of the released
/// checkpoint, so it spends no additional privacy budget.
fn serve(a: &args::ServeArgs) -> Result<(), String> {
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    privim_obs::info!("run", "start", command = "serve", addr = a.addr.clone());
    let app_config = privim_serve::AppConfig {
        graph: a.graph.clone(),
        // In `--follow` mode checkpoints come from the store, not this
        // path; `App::from_parts` only reads the limit fields.
        checkpoint: a.checkpoint.clone().unwrap_or_default(),
        max_trials: a.max_trials,
        spread_threads: a.spread_threads,
        debug_endpoints: a.debug_endpoints,
    };
    let config = privim_serve::ServerConfig {
        addr: a.addr.clone(),
        workers: a.workers,
        queue_depth: a.queue_depth,
        deadline: Duration::from_millis(a.deadline_ms.max(1)),
        slow_threshold: Duration::from_millis(a.slow_ms.max(1)),
        ..privim_serve::ServerConfig::default()
    };
    // SLO tracking + alert rules before the listener opens, so the very
    // first request is counted. The p99 rule sustains a few feeds to
    // ride out cold-start latency; budget burn fires on first breach.
    let slo_target_ms = a.slo_target_ms as f64;
    privim_serve::slo::install(Arc::new(privim_serve::SloTracker::new(
        privim_serve::SloConfig {
            target_p99_ms: slo_target_ms,
            window: a.slo_window,
            error_budget: a.slo_error_budget,
        },
    )));
    privim_obs::watch::arm(vec![
        privim_obs::AlertRule::new(
            "slo_latency_p99",
            "serve.slo.p99_ms",
            privim_obs::RuleKind::Threshold {
                limit: slo_target_ms,
                above: true,
            },
        )
        .sustained(3),
        privim_obs::AlertRule::new(
            "slo_error_budget",
            "serve.slo.budget_burn",
            privim_obs::RuleKind::Threshold {
                limit: 1.0,
                above: true,
            },
        ),
    ]);
    // Bind before loading: `/readyz` answers 503 while the checkpoint and
    // graph load, and flips to 200 the instant the handler is installed.
    let gate = privim_serve::ReadyGate::new();
    let server = privim_serve::Server::start(config, gate.clone())
        .map_err(|e| format!("cannot serve on {}: {e}", a.addr))?;
    let stop = privim_serve::install_shutdown_handler();
    if let Some(dir) = &a.follow {
        console(format!(
            "serving on http://{} following {dir} (poll every {}ms, {} workers); \
             SIGINT/SIGTERM to stop",
            server.local_addr(),
            a.poll_ms,
            a.workers,
        ));
        if let Err(e) = follow_store(dir, a.poll_ms, &app_config, &gate, &stop) {
            server.shutdown();
            return Err(e);
        }
    } else {
        let app = match privim_serve::App::load(&app_config) {
            Ok(app) => app,
            Err(e) => {
                server.shutdown();
                return Err(e);
            }
        };
        gate.install(Arc::new(app));
        console(format!(
            "serving on http://{} ({} workers, queue depth {}); SIGINT/SIGTERM to stop",
            server.local_addr(),
            a.workers,
            a.queue_depth
        ));
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    console("shutdown requested; draining in-flight requests");
    // Flight-recorder forensics for the shutdown itself: if a dump path
    // is configured (`--recorder-out`), the last requests survive it.
    if let Some(path) = privim_obs::FlightRecorder::dump_now("sigterm") {
        console(format!("flight recorder dumped to {}", path.display()));
    }
    server.shutdown();
    console("bye");
    Ok(())
}

/// The `--follow` hot-swap loop: serve the newest valid checkpoint-store
/// generation and swap the handler — through [`privim_serve::ReadyGate`],
/// so in-flight requests drain against the generation they started on —
/// whenever a newer valid generation appears. Corrupt or unrestorable
/// generations are skipped with a warning and never examined again; the
/// previous generation keeps serving. Runs until `stop` is set.
fn follow_store(
    dir: &str,
    poll_ms: u64,
    app_config: &privim_serve::AppConfig,
    gate: &privim_serve::ReadyGate,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<(), String> {
    use privim_core::checkpoint::CheckpointStore;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    let store = CheckpointStore::open(dir, usize::MAX)
        .map_err(|e| format!("cannot open checkpoint store {dir}: {e}"))?;
    let graph = privim_serve::load_graph(&app_config.graph)?;
    // `installed` is the live generation; `horizon` the newest epoch ever
    // examined (valid or not), so a rotten file is not re-read (and
    // re-warned about) every poll.
    let mut installed: Option<u64> = None;
    let mut horizon: Option<u64> = None;
    while !stop.load(Ordering::SeqCst) {
        let gens = store
            .generations()
            .map_err(|e| format!("cannot list checkpoint store {dir}: {e}"))?;
        let fresh: Vec<_> = gens
            .into_iter()
            .filter(|&(epoch, _)| Some(epoch) > horizon)
            .collect();
        // Newest first; fall back to older fresh generations when the
        // newest is torn or rotted, exactly like `load_latest_valid`.
        for (epoch, path) in fresh.iter().rev() {
            horizon = horizon.max(Some(*epoch));
            let loaded = CheckpointStore::load(path)
                .map_err(|e| e.to_string())
                .and_then(|ckpt| {
                    privim_serve::App::from_parts(graph.clone(), &ckpt.model, app_config)
                });
            match loaded {
                Ok(app) => {
                    let digest = app.checkpoint_digest().to_string();
                    let first = installed.is_none();
                    if first {
                        gate.install(Arc::new(app));
                    } else {
                        gate.swap(Arc::new(app));
                        privim_obs::counter("serve.follow.swaps").add(1);
                    }
                    if first {
                        privim_obs::info!(
                            "serve",
                            "follow_installed",
                            epoch = *epoch,
                            digest = digest.clone(),
                        );
                    } else {
                        privim_obs::info!(
                            "serve",
                            "follow_swapped",
                            epoch = *epoch,
                            digest = digest.clone(),
                        );
                    }
                    console(format!(
                        "generation {epoch} live (digest {digest}{})",
                        if first { "" } else { ", hot-swapped" }
                    ));
                    installed = Some(*epoch);
                    break;
                }
                Err(reason) => {
                    privim_obs::counter("serve.follow.rejected").add(1);
                    privim_obs::warn!(
                        "serve",
                        "follow_generation_rejected",
                        epoch = *epoch,
                        path = path.display().to_string(),
                        reason = reason,
                    );
                }
            }
        }
        // Sleep in slices so SIGINT/SIGTERM stays prompt.
        let mut slept = 0;
        while slept < poll_ms && !stop.load(Ordering::SeqCst) {
            let slice = poll_ms.saturating_sub(slept).min(50);
            std::thread::sleep(Duration::from_millis(slice));
            slept += slice;
        }
    }
    Ok(())
}

/// Runs the replicated-tier front-end: health-checked routing over the
/// given replicas with per-replica circuit breakers, bounded retry with
/// deterministic backoff, and optional tail-latency hedging for
/// `/v1/spread`. Like `serve`, it drains in-flight requests on
/// SIGINT/SIGTERM. The router holds no checkpoint state of its own — the
/// health thread's digest-agreement check is what keeps a mixed-version
/// tier from serving inconsistent answers.
fn route(a: &args::RouteArgs) -> Result<(), String> {
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    privim_obs::info!(
        "run",
        "start",
        command = "route",
        addr = a.addr.clone(),
        backends = a.backends.len() as u64,
    );
    let router = privim_serve::Router::new(privim_serve::RouterConfig {
        backends: a.backends.clone(),
        retries: a.retries,
        backoff: Duration::from_millis(a.backoff_ms),
        timeout: Duration::from_millis(a.timeout_ms.max(1)),
        hedge_after: a.hedge_ms.map(Duration::from_millis),
        breaker_failures: a.breaker_failures,
        breaker_cooldown: Duration::from_millis(a.breaker_cooldown_ms.max(1)),
        health_interval: Duration::from_millis(a.health_interval_ms.max(1)),
        probe_down_after: a.probe_down_after,
        seed: a.seed,
    })?;
    let health = router.spawn_health_thread();
    let config = privim_serve::ServerConfig {
        addr: a.addr.clone(),
        workers: a.workers,
        queue_depth: a.queue_depth,
        // The front-end deadline must outlive a full retry ladder:
        // every attempt's timeout plus the exponential backoffs between.
        deadline: Duration::from_millis(
            a.timeout_ms
                .max(1)
                .saturating_mul(u64::from(a.retries) + 2)
                .saturating_add(a.backoff_ms.saturating_mul(1u64 << a.retries.min(10))),
        ),
        ..privim_serve::ServerConfig::default()
    };
    let gate = privim_serve::ReadyGate::new();
    let server = privim_serve::Server::start(config, gate.clone())
        .map_err(|e| format!("cannot serve on {}: {e}", a.addr))?;
    gate.install(router.clone());
    console(format!(
        "routing http://{} over {} replica(s): {}; SIGINT/SIGTERM to stop",
        server.local_addr(),
        a.backends.len(),
        a.backends.join(", ")
    ));
    let stop = privim_serve::install_shutdown_handler();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    console("shutdown requested; draining in-flight requests");
    router.stop_flag().store(true, Ordering::SeqCst);
    server.shutdown();
    let _ = health.join();
    console("bye");
    Ok(())
}

/// Runs the deterministic TCP fault-injection proxy until SIGINT/SIGTERM.
/// The fault plan is a pure function of `(seed, connection index)`, so a
/// run against the same traffic replays the same faults — see
/// `privim_serve::chaosproxy`.
fn chaos(a: &args::ChaosArgs) -> Result<(), String> {
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    privim_obs::info!(
        "run",
        "start",
        command = "chaos",
        listen = a.listen.clone(),
        upstream = a.upstream.clone(),
        seed = a.seed,
    );
    let proxy = privim_serve::ChaosProxy::start(privim_serve::ChaosConfig {
        listen: a.listen.clone(),
        upstream: a.upstream.clone(),
        seed: a.seed,
        fault_rate: a.fault_rate,
    })
    .map_err(|e| format!("cannot start chaos proxy on {}: {e}", a.listen))?;
    console(format!(
        "chaos proxy on {} -> {} (seed {}, fault rate {}); SIGINT/SIGTERM to stop",
        proxy.local_addr(),
        a.upstream,
        a.seed,
        a.fault_rate
    ));
    let stop = privim_serve::install_shutdown_handler();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    proxy.shutdown();
    console("bye");
    Ok(())
}

/// Crash-safe `train` variant behind `--checkpoint-dir` / `--resume`:
/// atomic checkpoint generations every `--checkpoint-every` epochs, exact
/// ledger-verified resume from the newest valid generation, and seed
/// selection from the finished model. `--resume` additionally refuses to
/// start when the directory holds no valid generation — silently
/// retraining from scratch would spend privacy budget the caller thinks
/// was already spent.
fn train_crash_safe(
    g: &Graph,
    a: &args::TrainArgs,
    config: &PrivImConfig,
    candidates: &[u32],
    provenance: privim_core::checkpoint::SplitProvenance,
) -> Result<(), String> {
    use privim_core::checkpoint::CheckpointStore;
    use privim_core::resume::{train_resumable, ResumeOptions};
    use privim_core::sampling::extract_dual_stage;

    let (dir, must_resume) = match (&a.resume, &a.checkpoint_dir) {
        (Some(d), _) => (d.clone(), true),
        (None, Some(d)) => (d.clone(), false),
        (None, None) => unreachable!("caller checked the flags"),
    };
    let store = CheckpointStore::open(&dir, a.keep).map_err(|e| e.to_string())?;
    if must_resume
        && store
            .load_latest_valid()
            .map_err(|e| e.to_string())?
            .is_none()
    {
        return Err(format!(
            "--resume {dir}: no valid checkpoint generation found \
             (use --checkpoint-dir to start a fresh crash-safe run)"
        ));
    }

    // Extraction is deterministic in (graph, seed), so every resume sees
    // the same container the original invocation trained on.
    let mut rng = StdRng::seed_from_u64(a.seed);
    let out = extract_dual_stage(g, config, candidates, &mut rng);
    if out.container.is_empty() {
        return Err("extraction produced no subgraphs; lower the subgraph size".into());
    }
    let privacy = a.epsilon.map(|eps| {
        PrivacySetup::calibrate(
            eps,
            config.effective_delta(g.num_nodes()),
            config,
            out.container.len(),
            config.freq_threshold,
            NoiseKind::Gaussian,
        )
    });
    // Arm the watchdog over the guard's projected-spend feed so the
    // budget shows up as a `privim_alert_active{rule="epsilon_budget"}`
    // series in `--metrics-out` exports and the HTML report. The rule
    // engine consumes no RNG, so seeded runs stay bit-identical.
    if let Some(budget) = a.epsilon_budget {
        privim_obs::watch::arm(vec![privim_obs::AlertRule::new(
            "epsilon_budget",
            "dp.epsilon_next",
            privim_obs::RuleKind::BurnRate {
                budget,
                warn_fraction: a.budget_warn_fraction,
            },
        )]);
    }
    let outcome = train_resumable(
        a.method.model_kind(config.model),
        &out.container,
        config,
        privacy.as_ref(),
        a.seed,
        &store,
        ResumeOptions {
            checkpoint_every: a.checkpoint_every,
            keep: a.keep,
            epsilon_budget: a.epsilon_budget,
            budget_warn_fraction: a.budget_warn_fraction,
            split: Some(provenance),
        },
    )
    .map_err(|e| e.to_string())?;

    match outcome.resumed_from {
        Some(epoch) => console(format!(
            "resumed from epoch {epoch}/{} in {dir} (ledger re-verified)",
            config.iterations
        )),
        None => console(format!("fresh crash-safe run; generations in {dir}")),
    }
    if let Some(h) = outcome.budget_halt {
        // `{}` on f64 prints the shortest exact round-trip decimal, so
        // these lines carry the accountant's spend bit-for-bit.
        if h.fresh_steps == 0 {
            console(format!(
                "epsilon budget halt: resume refused at epoch {} — \
                 epsilon spent {} of budget {}, next step would reach {}",
                h.epoch, h.epsilon_spent, h.budget, h.projected_next
            ));
        } else {
            console(format!(
                "epsilon budget halt at epoch {}: epsilon spent {} of budget {}, \
                 next step would reach {} (checkpoint persisted)",
                h.epoch, h.epsilon_spent, h.budget, h.projected_next
            ));
        }
    }
    console(format!(
        "{}: trained {} epochs over {} subgraphs | epsilon spent {}",
        a.method.name(),
        outcome.report.losses.len(),
        out.container.len(),
        outcome
            .final_epsilon
            .map_or("- (non-private)".to_string(), |e| format!("{e:.4}")),
    ));
    let gt = GraphTensors::with_structural_features(g, config.feature_dim);
    let scores = outcome.model.seed_probabilities(&gt);
    let seeds = top_k_seeds(&scores, config.seed_size);
    console(format!("seeds: {seeds:?}"));
    if let Some(path) = &a.checkpoint {
        let cp = Checkpoint::capture(
            outcome.model.as_ref(),
            config.feature_dim,
            config.hidden,
            config.hops,
        );
        cp.save(path).map_err(|e| e.to_string())?;
        console(format!("checkpoint written to {path}"));
    }
    Ok(())
}

/// Trains a standalone model (same settings as the pipeline) so the
/// checkpoint matches what `train` reported.
fn train_for_checkpoint(
    g: &Graph,
    a: &args::TrainArgs,
    config: &PrivImConfig,
) -> Result<Checkpoint, String> {
    use privim_core::sampling::extract_dual_stage;
    use privim_core::train::train;
    use privim_nn::models::build_model;

    let mut rng = StdRng::seed_from_u64(a.seed);
    let candidates: Vec<u32> = g.nodes().collect();
    let out = extract_dual_stage(g, config, &candidates, &mut rng);
    if out.container.is_empty() {
        return Err("extraction produced no subgraphs; lower the subgraph size".into());
    }
    let kind = a.method.model_kind(config.model);
    let mut model = build_model(
        kind,
        config.feature_dim,
        config.hidden,
        config.hops,
        &mut rng,
    );
    let privacy = a.epsilon.map(|eps| {
        PrivacySetup::calibrate(
            eps,
            config.effective_delta(g.num_nodes()),
            config,
            out.container.len(),
            config.freq_threshold,
            NoiseKind::Gaussian,
        )
    });
    train(
        model.as_mut(),
        &out.container,
        config,
        privacy.as_ref(),
        &mut rng,
    )
    .map_err(|e| format!("training aborted: {e}"))?;
    Ok(Checkpoint::capture(
        model.as_ref(),
        config.feature_dim,
        config.hidden,
        config.hops,
    ))
}

fn load_graph(path: &str) -> Result<Graph, String> {
    if path.ends_with(".bin") {
        return io::load_binary(path).map_err(|e| e.to_string());
    }
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    io::read_edge_list_auto(&text, 1.0).map_err(|e| e.to_string())
}

fn save_graph(g: &Graph, path: &str) -> Result<(), String> {
    if path.ends_with(".bin") {
        io::save_binary(g, path).map_err(|e| e.to_string())
    } else {
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        io::write_edge_list(g, file).map_err(|e| e.to_string())
    }
}
