//! Dependency-free argument parsing for the `privim` CLI.

use privim_core::pipeline::Method;
use privim_datasets::paper::Dataset;
use privim_nn::models::ModelKind;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a dataset replica and write it as an edge list / binary.
    Generate(GenerateArgs),
    /// Train a (private) model and save a checkpoint + selected seeds.
    Train(TrainArgs),
    /// Select seeds with a saved checkpoint on a graph file.
    Select(SelectArgs),
    /// Evaluate a seed set's influence spread on a graph file.
    Evaluate(EvaluateArgs),
    /// Print accounting numbers (σ, noise std, spent ε) for a setting.
    Account(AccountArgs),
    /// Serve influence-maximization queries over HTTP from a checkpoint.
    Serve(ServeArgs),
    /// Front a replicated serve tier: health checks, retries, breakers.
    Route(RouteArgs),
    /// Run the deterministic TCP fault-injection proxy.
    Chaos(ChaosArgs),
    /// Render telemetry and active alerts as a text dashboard.
    Monitor(MonitorArgs),
    /// Run empirical privacy attacks against trained checkpoints.
    Audit(AuditArgs),
    /// Assemble exported span files (or a live router's debug endpoint)
    /// into cross-process trace trees with per-hop latency tables.
    TraceView(TraceViewArgs),
    /// Print usage.
    Help,
}

#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    pub dataset: Dataset,
    pub scale: f64,
    pub seed: u64,
    pub output: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    pub graph: String,
    pub method: Method,
    pub model: ModelKind,
    pub epsilon: Option<f64>,
    pub seed_size: usize,
    pub iterations: usize,
    pub seed: u64,
    pub checkpoint: Option<String>,
    /// Crash-safe training: write atomic checkpoint generations to this
    /// directory (`--checkpoint-dir`), resuming from the newest valid one
    /// when present.
    pub checkpoint_dir: Option<String>,
    /// Resume a killed run from this directory (`--resume`); like
    /// `--checkpoint-dir` but refuses to start if no valid generation
    /// exists there.
    pub resume: Option<String>,
    /// Epochs between checkpoint generations (`--checkpoint-every`).
    pub checkpoint_every: usize,
    /// Checkpoint generations retained on disk (`--keep`).
    pub keep: usize,
    /// Hard ε ceiling (`--epsilon-budget`): halt before any step whose
    /// accountant-exact ε would exceed it. Requires `--epsilon` and a
    /// crash-safe run (`--checkpoint-dir`/`--resume`) so the halt can
    /// persist a final checkpoint.
    pub epsilon_budget: Option<f64>,
    /// Fraction of the budget at which the one-shot warning alert fires
    /// (`--budget-warn-fraction`, default 0.8).
    pub budget_warn_fraction: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub struct SelectArgs {
    pub graph: String,
    pub checkpoint: String,
    pub seed_size: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub struct EvaluateArgs {
    pub graph: String,
    pub seeds: Vec<u32>,
    pub steps: Option<usize>,
    pub trials: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    pub graph: String,
    /// Single checkpoint file to serve (`--checkpoint`). Exactly one of
    /// this and [`ServeArgs::follow`] must be given.
    pub checkpoint: Option<String>,
    /// Crash-safe checkpoint store directory to follow (`--follow`):
    /// serve the newest valid generation and hot-swap — without dropping
    /// in-flight requests — whenever a newer valid one appears.
    pub follow: Option<String>,
    /// Store poll interval in milliseconds for `--follow` (`--poll-ms`).
    pub poll_ms: u64,
    pub addr: String,
    pub workers: usize,
    pub queue_depth: usize,
    pub deadline_ms: u64,
    pub max_trials: usize,
    pub spread_threads: usize,
    /// Log a warning for requests slower than this (`--slow-ms`).
    pub slow_ms: u64,
    /// Expose `GET /debug/trace` and `GET /debug/profile`
    /// (`--debug-endpoints`); off by default — see `AppConfig`.
    pub debug_endpoints: bool,
    /// p99 latency target in milliseconds for the `/slo` tracker
    /// (`--slo-target-ms`).
    pub slo_target_ms: u64,
    /// Rolling window, in requests, for SLO latency quantiles and
    /// error/shed rates (`--slo-window`).
    pub slo_window: usize,
    /// Fraction of windowed requests allowed to fail or shed before the
    /// error budget counts as burned (`--slo-error-budget`).
    pub slo_error_budget: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub struct RouteArgs {
    /// Replica addresses (`--backends host:port[,host:port...]`).
    pub backends: Vec<String>,
    /// Front-end listen address (`--addr`).
    pub addr: String,
    /// Extra attempts after the first on connect errors, timeouts, and
    /// 503s (`--retries`).
    pub retries: u32,
    /// Base for the deterministic exponential backoff between attempts
    /// (`--backoff-ms`).
    pub backoff_ms: u64,
    /// Per-attempt upstream timeout (`--timeout-ms`).
    pub timeout_ms: u64,
    /// Hedge `/v1/spread` requests still unanswered after this delay
    /// (`--hedge-ms`); absent disables hedging.
    pub hedge_ms: Option<u64>,
    /// Consecutive failures that trip a replica's breaker
    /// (`--breaker-failures`).
    pub breaker_failures: u32,
    /// Base breaker cooldown before the half-open probe
    /// (`--breaker-cooldown-ms`).
    pub breaker_cooldown_ms: u64,
    /// Health-check poll interval (`--health-interval-ms`).
    pub health_interval_ms: u64,
    /// Consecutive failed health probes before a replica is pulled
    /// (`--probe-down-after`).
    pub probe_down_after: u32,
    /// Seed for breaker reopen jitter (`--seed`).
    pub seed: u64,
    /// Front-end worker threads (`--workers`).
    pub workers: usize,
    /// Front-end queue depth (`--queue-depth`).
    pub queue_depth: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ChaosArgs {
    /// Listen address (`--listen`; port 0 picks a free port).
    pub listen: String,
    /// Upstream address to proxy to (`--upstream`).
    pub upstream: String,
    /// Fault-plan seed (`--seed`).
    pub seed: u64,
    /// Fraction of connections faulted, in [0, 1] (`--fault-rate`).
    pub fault_rate: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub struct MonitorArgs {
    /// Telemetry JSONL file to tail (`--input`).
    pub input: Option<String>,
    /// `host:port` of a running `privim serve` to poll `/metrics` from
    /// (`--addr`).
    pub addr: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct AccountArgs {
    pub epsilon: f64,
    pub delta: f64,
    pub iterations: usize,
    pub batch: usize,
    pub container: usize,
    pub occurrences: usize,
    /// Optional model checkpoint (`--checkpoint`): print its stable
    /// digest alongside the accounting numbers, so released artifacts
    /// can be tied to the ε they were trained under.
    pub checkpoint: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct AuditArgs {
    /// Graph the checkpoints were trained on.
    pub graph: String,
    /// Crash-safe checkpoint directories to sweep (`--checkpoint-dirs`,
    /// comma separated). Each contributes its newest valid generation;
    /// the recorded ledger supplies the ε label and the recorded split
    /// provenance the membership ground truth.
    pub checkpoint_dirs: Vec<String>,
    /// Which attack(s) to run (`--attack`).
    pub attack: AuditAttack,
    /// Threat model(s) (`--mode`).
    pub mode: AuditMode,
    /// `host:port` of a live `privim serve` instance for black-box
    /// attacks (`--addr`).
    pub addr: Option<String>,
    /// Attack RNG seed (`--seed`).
    pub seed: u64,
    /// Write the `{seed, rows, telemetry}` envelope here (`--json`).
    pub json: Option<String>,
    /// FPR operating point for the TPR-at-low-FPR column (`--low-fpr`).
    pub low_fpr: f64,
    /// Candidate-pair budget for the topology attack (`--max-pairs`).
    pub max_pairs: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TraceViewArgs {
    /// Span-export JSONL files to merge (`--spans a.jsonl[,b.jsonl...]`).
    pub spans: Vec<String>,
    /// Only render the trace derived from this request id
    /// (`--request-id`).
    pub request_id: Option<String>,
    /// Only render this trace id, as 32 lowercase hex digits
    /// (`--trace`).
    pub trace: Option<String>,
    /// `host:port` of a live `privim route` front-end: fetch its
    /// assembled `/debug/tier-trace` view instead of reading files
    /// (`--addr`).
    pub addr: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuditAttack {
    Membership,
    Topology,
    Both,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuditMode {
    WhiteBox,
    BlackBox,
    Both,
}

/// Usage text.
pub const USAGE: &str = "\
privim — differentially private GNNs for influence maximization

USAGE:
  privim generate --dataset <name> [--scale f] [--seed u] --output <path>
  privim train    --graph <path> [--method privim*|privim|scs|egn|hp|hp-grat|non-private]
                  [--model grat|gcn|gat|gin|sage|mlp] [--epsilon f] [--k n]
                  [--iterations n] [--seed u] [--checkpoint <path>]
                  [--checkpoint-dir <dir> | --resume <dir>]
                  [--checkpoint-every n] [--keep n]
                  [--epsilon-budget f] [--budget-warn-fraction f]
  privim select   --graph <path> --checkpoint <path> [--k n]
  privim evaluate --graph <path> --seeds 1,2,3 [--steps n] [--trials n]
  privim account  --epsilon f [--delta f] [--iterations n] [--batch n]
                  [--container n] [--occurrences n] [--checkpoint <path>]
  privim audit    --graph <path> --checkpoint-dirs <dir>[,<dir>...]
                  [--attack membership|topology|both]
                  [--mode white-box|black-box|both] [--addr host:port]
                  [--seed u] [--json <path>] [--low-fpr f] [--max-pairs n]
  privim serve    --graph <path> (--checkpoint <path> | --follow <dir>)
                  [--poll-ms n] [--addr host:port]
                  [--workers n] [--queue-depth n] [--deadline-ms n]
                  [--max-trials n] [--spread-threads n] [--slow-ms n]
                  [--debug-endpoints] [--slo-target-ms n] [--slo-window n]
                  [--slo-error-budget f]
  privim route    --backends host:port[,host:port...] [--addr host:port]
                  [--retries n] [--backoff-ms n] [--timeout-ms n]
                  [--hedge-ms n] [--breaker-failures n]
                  [--breaker-cooldown-ms n] [--health-interval-ms n]
                  [--probe-down-after n] [--seed u] [--workers n]
                  [--queue-depth n]
  privim chaos    --listen host:port --upstream host:port
                  [--seed u] [--fault-rate f]
  privim monitor  --input <telemetry.jsonl> | --addr host:port
  privim trace-view (--spans a.jsonl[,b.jsonl...] | --addr host:port)
                  [--request-id <id>] [--trace <32-hex>]
  privim help

GLOBAL FLAGS (any subcommand):
  --log-level error|warn|info|debug|trace|off
                  structured events on stderr (overrides PRIVIM_LOG)
  --telemetry-out <path>
                  write every event as JSON lines to <path>
  --profile       time hot kernels; print the call tree to stderr on exit
  --profile-out <path>
                  also write the profile as folded-stack flamegraph text
  --metrics-out <path>
                  write final metrics in Prometheus text format
  --report-out <path>
                  write a self-contained HTML run report
  --recorder-out <path>
                  arm the flight recorder; dump the last events to <path>
                  on panic, injected kill, or SIGTERM
  --span-export <path>
                  append every finished trace span as JSON lines to
                  <path>, for `privim trace-view` assembly
  --chaos-kill <site>:<hit>
                  inject a process kill at the Nth pass of a fault site
                  (deterministic chaos testing; see privim_obs::fault)

Datasets: email, bitcoin, lastfm, hepph, facebook, gowalla.
Graph files: whitespace edge lists ('src dst [weight]', ids 0..N-1,
first line may be '# nodes N edges M') or .bin (privim binary format).";

/// Observability options shared by every subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsArgs {
    /// Stderr event verbosity (`--log-level`); `None` falls back to the
    /// `PRIVIM_LOG` environment variable unless [`ObsArgs::log_off`].
    pub log_level: Option<privim_obs::Level>,
    /// `--log-level off` was given: suppress stderr events even if
    /// `PRIVIM_LOG` is set.
    pub log_off: bool,
    /// JSONL telemetry file (`--telemetry-out`).
    pub telemetry_out: Option<String>,
    /// Enable the scoped profiler (`--profile`); the call tree prints to
    /// stderr when the command finishes.
    pub profile: bool,
    /// Folded-stack flamegraph text file (`--profile-out`); implies
    /// [`ObsArgs::profile`].
    pub profile_out: Option<String>,
    /// Prometheus text-format metrics file (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Self-contained HTML run-report file (`--report-out`).
    pub report_out: Option<String>,
    /// Arm the flight recorder and dump it here on panic, injected
    /// kill, or SIGTERM (`--recorder-out`).
    pub recorder_out: Option<String>,
    /// Span-export JSONL file (`--span-export`): append every finished
    /// trace span for later `privim trace-view` assembly.
    pub span_export: Option<String>,
    /// Inject a kill at the `hit`-th pass of a fault site
    /// (`--chaos-kill site:hit`), for deterministic crash drills.
    pub chaos_kill: Option<(String, u64)>,
}

impl ObsArgs {
    /// The effective stderr verbosity after combining the flag with the
    /// `PRIVIM_LOG` environment variable (flag wins).
    pub fn effective_level(&self) -> Option<privim_obs::Level> {
        if self.log_off {
            return None;
        }
        self.log_level.or_else(privim_obs::Level::from_env)
    }
}

/// Strips the global observability flags from anywhere in the command
/// line, returning the remaining arguments (for [`parse_command`]) and
/// the parsed [`ObsArgs`].
pub fn split_obs_args(args: &[String]) -> Result<(Vec<String>, ObsArgs), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut obs = ObsArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log-level" => {
                let v = it.next().ok_or("--log-level needs a value")?;
                if v.eq_ignore_ascii_case("off") {
                    obs.log_off = true;
                    obs.log_level = None;
                } else {
                    obs.log_off = false;
                    obs.log_level = Some(v.parse().map_err(|e| format!("bad --log-level: {e}"))?);
                }
            }
            "--telemetry-out" => {
                let v = it.next().ok_or("--telemetry-out needs a value")?;
                obs.telemetry_out = Some(v.clone());
            }
            "--profile" => obs.profile = true,
            "--profile-out" => {
                let v = it.next().ok_or("--profile-out needs a value")?;
                obs.profile = true;
                obs.profile_out = Some(v.clone());
            }
            "--metrics-out" => {
                let v = it.next().ok_or("--metrics-out needs a value")?;
                obs.metrics_out = Some(v.clone());
            }
            "--report-out" => {
                let v = it.next().ok_or("--report-out needs a value")?;
                obs.report_out = Some(v.clone());
            }
            "--recorder-out" => {
                let v = it.next().ok_or("--recorder-out needs a value")?;
                obs.recorder_out = Some(v.clone());
            }
            "--span-export" => {
                let v = it.next().ok_or("--span-export needs a value")?;
                obs.span_export = Some(v.clone());
            }
            "--chaos-kill" => {
                let v = it.next().ok_or("--chaos-kill needs a value")?;
                let (site, hit) = v
                    .rsplit_once(':')
                    .ok_or("--chaos-kill needs site:hit (e.g. checkpoint.write.mid:1)")?;
                let hit: u64 = hit
                    .parse()
                    .map_err(|e| format!("bad --chaos-kill hit count: {e}"))?;
                if site.is_empty() || hit == 0 {
                    return Err("--chaos-kill needs a non-empty site and a hit count >= 1".into());
                }
                obs.chaos_kill = Some((site.to_string(), hit));
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((rest, obs))
}

/// Parses a dataset name.
pub fn parse_dataset(s: &str) -> Result<Dataset, String> {
    match s.to_ascii_lowercase().as_str() {
        "email" => Ok(Dataset::Email),
        "bitcoin" => Ok(Dataset::Bitcoin),
        "lastfm" => Ok(Dataset::LastFm),
        "hepph" => Ok(Dataset::HepPh),
        "facebook" => Ok(Dataset::Facebook),
        "gowalla" => Ok(Dataset::Gowalla),
        other => Err(format!("unknown dataset: {other}")),
    }
}

/// Parses a method name.
pub fn parse_method(s: &str) -> Result<Method, String> {
    match s.to_ascii_lowercase().as_str() {
        "privim*" | "privim-star" | "star" => Ok(Method::PrivImStar),
        "privim" => Ok(Method::PrivIm),
        "scs" | "privim+scs" => Ok(Method::PrivImScs),
        "egn" => Ok(Method::Egn),
        "hp" => Ok(Method::Hp),
        "hp-grat" | "hpgrat" => Ok(Method::HpGrat),
        "non-private" | "nonprivate" => Ok(Method::NonPrivate),
        other => Err(format!("unknown method: {other}")),
    }
}

/// Parses a model name.
pub fn parse_model(s: &str) -> Result<ModelKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "grat" => Ok(ModelKind::Grat),
        "gcn" => Ok(ModelKind::Gcn),
        "gat" => Ok(ModelKind::Gat),
        "gin" => Ok(ModelKind::Gin),
        "sage" | "graphsage" => Ok(ModelKind::GraphSage),
        "mlp" => Ok(ModelKind::Mlp),
        other => Err(format!("unknown model: {other}")),
    }
}

struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, found {flag}"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?
                .clone();
            pairs.push((name.to_string(), value));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    fn parse_opt<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
            None => Ok(default),
        }
    }

    fn unknown_flags(&self, allowed: &[&str]) -> Vec<String> {
        self.pairs
            .iter()
            .filter(|(n, _)| !allowed.contains(&n.as_str()))
            .map(|(n, _)| n.clone())
            .collect()
    }
}

/// Parses a full command line (without the program name).
pub fn parse_command(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let f = Flags::parse(rest)?;
            check_unknown(&f, &["dataset", "scale", "seed", "output"])?;
            Ok(Command::Generate(GenerateArgs {
                dataset: parse_dataset(f.require("dataset")?)?,
                scale: f.parse_opt("scale", 0.1)?,
                seed: f.parse_opt("seed", 42)?,
                output: f.require("output")?.to_string(),
            }))
        }
        "train" => {
            let f = Flags::parse(rest)?;
            check_unknown(
                &f,
                &[
                    "graph",
                    "method",
                    "model",
                    "epsilon",
                    "k",
                    "iterations",
                    "seed",
                    "checkpoint",
                    "checkpoint-dir",
                    "resume",
                    "checkpoint-every",
                    "keep",
                    "epsilon-budget",
                    "budget-warn-fraction",
                ],
            )?;
            if f.get("resume").is_some() && f.get("checkpoint-dir").is_some() {
                return Err(
                    "--resume already names the checkpoint directory; drop --checkpoint-dir".into(),
                );
            }
            let checkpoint_every: usize = f.parse_opt("checkpoint-every", 5)?;
            if checkpoint_every == 0 {
                return Err("--checkpoint-every must be positive".into());
            }
            let keep: usize = f.parse_opt("keep", 3)?;
            if keep == 0 {
                return Err("--keep must be positive".into());
            }
            let epsilon_budget: Option<f64> = match f.get("epsilon-budget") {
                Some(v) => Some(
                    v.parse()
                        .map_err(|e| format!("bad --epsilon-budget: {e}"))?,
                ),
                None => None,
            };
            if let Some(b) = epsilon_budget {
                if !(b > 0.0 && b.is_finite()) {
                    return Err("--epsilon-budget must be positive and finite".into());
                }
                if f.get("epsilon").is_none() {
                    return Err(
                        "--epsilon-budget only applies to private runs; add --epsilon".into(),
                    );
                }
                if f.get("checkpoint-dir").is_none() && f.get("resume").is_none() {
                    return Err("--epsilon-budget needs a crash-safe run so the halt can \
                                persist a checkpoint; add --checkpoint-dir or --resume"
                        .into());
                }
            }
            let budget_warn_fraction: f64 = f.parse_opt("budget-warn-fraction", 0.8)?;
            if !(budget_warn_fraction > 0.0 && budget_warn_fraction <= 1.0) {
                return Err("--budget-warn-fraction must be in (0, 1]".into());
            }
            Ok(Command::Train(TrainArgs {
                graph: f.require("graph")?.to_string(),
                method: parse_method(f.get("method").unwrap_or("privim*"))?,
                model: parse_model(f.get("model").unwrap_or("grat"))?,
                epsilon: match f.get("epsilon") {
                    Some(v) => Some(v.parse().map_err(|e| format!("bad --epsilon: {e}"))?),
                    None => None,
                },
                seed_size: f.parse_opt("k", 50)?,
                iterations: f.parse_opt("iterations", 60)?,
                seed: f.parse_opt("seed", 42)?,
                checkpoint: f.get("checkpoint").map(str::to_string),
                checkpoint_dir: f.get("checkpoint-dir").map(str::to_string),
                resume: f.get("resume").map(str::to_string),
                checkpoint_every,
                keep,
                epsilon_budget,
                budget_warn_fraction,
            }))
        }
        "select" => {
            let f = Flags::parse(rest)?;
            check_unknown(&f, &["graph", "checkpoint", "k"])?;
            Ok(Command::Select(SelectArgs {
                graph: f.require("graph")?.to_string(),
                checkpoint: f.require("checkpoint")?.to_string(),
                seed_size: f.parse_opt("k", 50)?,
            }))
        }
        "evaluate" => {
            let f = Flags::parse(rest)?;
            check_unknown(&f, &["graph", "seeds", "steps", "trials"])?;
            let seeds: Result<Vec<u32>, _> = f
                .require("seeds")?
                .split(',')
                .map(|s| s.trim().parse::<u32>())
                .collect();
            Ok(Command::Evaluate(EvaluateArgs {
                graph: f.require("graph")?.to_string(),
                seeds: seeds.map_err(|e| format!("bad --seeds: {e}"))?,
                steps: match f.get("steps") {
                    Some(v) => Some(v.parse().map_err(|e| format!("bad --steps: {e}"))?),
                    None => Some(1),
                },
                trials: f.parse_opt("trials", 1000)?,
            }))
        }
        "account" => {
            let f = Flags::parse(rest)?;
            check_unknown(
                &f,
                &[
                    "epsilon",
                    "delta",
                    "iterations",
                    "batch",
                    "container",
                    "occurrences",
                    "checkpoint",
                ],
            )?;
            Ok(Command::Account(AccountArgs {
                epsilon: f
                    .require("epsilon")?
                    .parse()
                    .map_err(|e| format!("bad --epsilon: {e}"))?,
                delta: f.parse_opt("delta", 1e-5)?,
                iterations: f.parse_opt("iterations", 60)?,
                batch: f.parse_opt("batch", 32)?,
                container: f.parse_opt("container", 100)?,
                occurrences: f.parse_opt("occurrences", 4)?,
                checkpoint: f.get("checkpoint").map(str::to_string),
            }))
        }
        "audit" => {
            let f = Flags::parse(rest)?;
            check_unknown(
                &f,
                &[
                    "graph",
                    "checkpoint-dirs",
                    "attack",
                    "mode",
                    "addr",
                    "seed",
                    "json",
                    "low-fpr",
                    "max-pairs",
                ],
            )?;
            let checkpoint_dirs: Vec<String> = f
                .require("checkpoint-dirs")?
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if checkpoint_dirs.is_empty() {
                return Err("--checkpoint-dirs needs at least one directory".into());
            }
            let attack = match f.get("attack").unwrap_or("both") {
                "membership" => AuditAttack::Membership,
                "topology" => AuditAttack::Topology,
                "both" => AuditAttack::Both,
                other => return Err(format!("bad --attack: {other}")),
            };
            let mode = match f.get("mode").unwrap_or("white-box") {
                "white-box" | "whitebox" => AuditMode::WhiteBox,
                "black-box" | "blackbox" => AuditMode::BlackBox,
                "both" => AuditMode::Both,
                other => return Err(format!("bad --mode: {other}")),
            };
            let addr = f.get("addr").map(str::to_string);
            if matches!(mode, AuditMode::BlackBox | AuditMode::Both) && addr.is_none() {
                return Err("black-box audits need --addr host:port of a live server".into());
            }
            let low_fpr: f64 = f.parse_opt("low-fpr", 0.1)?;
            if !(low_fpr > 0.0 && low_fpr < 1.0) {
                return Err("--low-fpr must be in (0, 1)".into());
            }
            let max_pairs: usize = f.parse_opt("max-pairs", 200_000)?;
            if max_pairs == 0 {
                return Err("--max-pairs must be positive".into());
            }
            Ok(Command::Audit(AuditArgs {
                graph: f.require("graph")?.to_string(),
                checkpoint_dirs,
                attack,
                mode,
                addr,
                seed: f.parse_opt("seed", 42)?,
                json: f.get("json").map(str::to_string),
                low_fpr,
                max_pairs,
            }))
        }
        "serve" => {
            // `--debug-endpoints` is the one valueless serve flag; strip
            // it before the pair-based parser sees the rest.
            let mut rest: Vec<String> = rest.to_vec();
            let before = rest.len();
            rest.retain(|a| a != "--debug-endpoints");
            let debug_endpoints = rest.len() != before;
            let f = Flags::parse(&rest)?;
            check_unknown(
                &f,
                &[
                    "graph",
                    "checkpoint",
                    "follow",
                    "poll-ms",
                    "addr",
                    "workers",
                    "queue-depth",
                    "deadline-ms",
                    "max-trials",
                    "spread-threads",
                    "slow-ms",
                    "slo-target-ms",
                    "slo-window",
                    "slo-error-budget",
                ],
            )?;
            let checkpoint = f.get("checkpoint").map(str::to_string);
            let follow = f.get("follow").map(str::to_string);
            match (&checkpoint, &follow) {
                (None, None) => {
                    return Err("serve needs --checkpoint <path> or --follow <dir>".into())
                }
                (Some(_), Some(_)) => {
                    return Err("serve takes --checkpoint or --follow, not both".into())
                }
                _ => {}
            }
            let poll_ms: u64 = f.parse_opt("poll-ms", 1_000)?;
            if poll_ms == 0 {
                return Err("--poll-ms must be positive".into());
            }
            let slo_window: usize = f.parse_opt("slo-window", 512)?;
            if slo_window == 0 {
                return Err("--slo-window must be positive".into());
            }
            let slo_error_budget: f64 = f.parse_opt("slo-error-budget", 0.01)?;
            if !(slo_error_budget > 0.0 && slo_error_budget < 1.0) {
                return Err("--slo-error-budget must be in (0, 1)".into());
            }
            Ok(Command::Serve(ServeArgs {
                graph: f.require("graph")?.to_string(),
                checkpoint,
                follow,
                poll_ms,
                addr: f.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
                workers: f.parse_opt("workers", 4)?,
                queue_depth: f.parse_opt("queue-depth", 64)?,
                deadline_ms: f.parse_opt("deadline-ms", 10_000)?,
                max_trials: f.parse_opt("max-trials", 100_000)?,
                spread_threads: f.parse_opt("spread-threads", 2)?,
                slow_ms: f.parse_opt("slow-ms", 1_000)?,
                debug_endpoints,
                slo_target_ms: f.parse_opt("slo-target-ms", 250)?,
                slo_window,
                slo_error_budget,
            }))
        }
        "route" => {
            let f = Flags::parse(rest)?;
            check_unknown(
                &f,
                &[
                    "backends",
                    "addr",
                    "retries",
                    "backoff-ms",
                    "timeout-ms",
                    "hedge-ms",
                    "breaker-failures",
                    "breaker-cooldown-ms",
                    "health-interval-ms",
                    "probe-down-after",
                    "seed",
                    "workers",
                    "queue-depth",
                ],
            )?;
            let backends: Vec<String> = f
                .require("backends")?
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if backends.is_empty() {
                return Err("--backends needs at least one host:port".into());
            }
            let hedge_ms = match f.get("hedge-ms") {
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --hedge-ms: {e}"))?,
                ),
                None => None,
            };
            let breaker_failures: u32 = f.parse_opt("breaker-failures", 3)?;
            if breaker_failures == 0 {
                return Err("--breaker-failures must be positive".into());
            }
            let probe_down_after: u32 = f.parse_opt("probe-down-after", 2)?;
            if probe_down_after == 0 {
                return Err("--probe-down-after must be positive".into());
            }
            Ok(Command::Route(RouteArgs {
                backends,
                addr: f.get("addr").unwrap_or("127.0.0.1:7800").to_string(),
                retries: f.parse_opt("retries", 2)?,
                backoff_ms: f.parse_opt("backoff-ms", 50)?,
                timeout_ms: f.parse_opt("timeout-ms", 10_000)?,
                hedge_ms,
                breaker_failures,
                breaker_cooldown_ms: f.parse_opt("breaker-cooldown-ms", 1_000)?,
                health_interval_ms: f.parse_opt("health-interval-ms", 500)?,
                probe_down_after,
                seed: f.parse_opt("seed", 0)?,
                workers: f.parse_opt("workers", 4)?,
                queue_depth: f.parse_opt("queue-depth", 64)?,
            }))
        }
        "chaos" => {
            let f = Flags::parse(rest)?;
            check_unknown(&f, &["listen", "upstream", "seed", "fault-rate"])?;
            let fault_rate: f64 = f.parse_opt("fault-rate", 0.1)?;
            if !(0.0..=1.0).contains(&fault_rate) {
                return Err("--fault-rate must be in [0, 1]".into());
            }
            Ok(Command::Chaos(ChaosArgs {
                listen: f.require("listen")?.to_string(),
                upstream: f.require("upstream")?.to_string(),
                seed: f.parse_opt("seed", 0)?,
                fault_rate,
            }))
        }
        "monitor" => {
            let f = Flags::parse(rest)?;
            check_unknown(&f, &["input", "addr"])?;
            let input = f.get("input").map(str::to_string);
            let addr = f.get("addr").map(str::to_string);
            match (&input, &addr) {
                (None, None) => {
                    return Err(
                        "monitor needs --input <telemetry.jsonl> or --addr host:port".into(),
                    )
                }
                (Some(_), Some(_)) => {
                    return Err("monitor takes --input or --addr, not both".into())
                }
                _ => {}
            }
            Ok(Command::Monitor(MonitorArgs { input, addr }))
        }
        "trace-view" => {
            let f = Flags::parse(rest)?;
            check_unknown(&f, &["spans", "request-id", "trace", "addr"])?;
            let spans: Vec<String> = f
                .get("spans")
                .map(|v| {
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default();
            let addr = f.get("addr").map(str::to_string);
            match (spans.is_empty(), &addr) {
                (true, None) => {
                    return Err(
                        "trace-view needs --spans <file>[,<file>...] or --addr host:port".into(),
                    )
                }
                (false, Some(_)) => {
                    return Err("trace-view takes --spans or --addr, not both".into())
                }
                _ => {}
            }
            let trace = f.get("trace").map(str::to_string);
            if let Some(t) = &trace {
                let ok = t.len() == 32 && t.bytes().all(|b| b.is_ascii_hexdigit());
                if !ok {
                    return Err("--trace must be a 32-digit hex trace id".into());
                }
            }
            let request_id = f.get("request-id").map(str::to_string);
            if trace.is_some() && request_id.is_some() {
                return Err("trace-view takes --request-id or --trace, not both".into());
            }
            Ok(Command::TraceView(TraceViewArgs {
                spans,
                request_id,
                trace,
                addr,
            }))
        }
        other => Err(format!("unknown command: {other}\n\n{USAGE}")),
    }
}

fn check_unknown(f: &Flags, allowed: &[&str]) -> Result<(), String> {
    let unknown = f.unknown_flags(allowed);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(format!("unknown flags: {}", unknown.join(", ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Command, String> {
        parse_command(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn generate_round_trip() {
        let cmd = parse(&[
            "generate",
            "--dataset",
            "lastfm",
            "--scale",
            "0.2",
            "--output",
            "g.bin",
        ])
        .unwrap();
        match cmd {
            Command::Generate(a) => {
                assert_eq!(a.dataset, Dataset::LastFm);
                assert_eq!(a.scale, 0.2);
                assert_eq!(a.seed, 42);
                assert_eq!(a.output, "g.bin");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn train_defaults_and_overrides() {
        let cmd = parse(&["train", "--graph", "g.bin", "--epsilon", "3", "--k", "10"]).unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.method, Method::PrivImStar);
                assert_eq!(a.model, ModelKind::Grat);
                assert_eq!(a.epsilon, Some(3.0));
                assert_eq!(a.seed_size, 10);
                assert_eq!(a.iterations, 60);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "train", "--graph", "g.bin", "--method", "hp-grat", "--model", "gcn",
        ])
        .unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.method, Method::HpGrat);
                assert_eq!(a.model, ModelKind::Gcn);
                assert_eq!(a.epsilon, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn train_resume_flags() {
        let cmd = parse(&["train", "--graph", "g.bin"]).unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.checkpoint_dir, None);
                assert_eq!(a.resume, None);
                assert_eq!(a.checkpoint_every, 5);
                assert_eq!(a.keep, 3);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "train",
            "--graph",
            "g.bin",
            "--checkpoint-dir",
            "ckpts",
            "--checkpoint-every",
            "2",
            "--keep",
            "4",
        ])
        .unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.checkpoint_dir.as_deref(), Some("ckpts"));
                assert_eq!(a.checkpoint_every, 2);
                assert_eq!(a.keep, 4);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["train", "--graph", "g.bin", "--resume", "ckpts"]).unwrap();
        match cmd {
            Command::Train(a) => assert_eq!(a.resume.as_deref(), Some("ckpts")),
            other => panic!("{other:?}"),
        }
        assert!(parse(&[
            "train",
            "--graph",
            "g",
            "--resume",
            "a",
            "--checkpoint-dir",
            "b",
        ])
        .unwrap_err()
        .contains("--resume"));
        assert!(parse(&["train", "--graph", "g", "--checkpoint-every", "0"])
            .unwrap_err()
            .contains("--checkpoint-every"));
        assert!(parse(&["train", "--graph", "g", "--keep", "0"])
            .unwrap_err()
            .contains("--keep"));
    }

    #[test]
    fn train_budget_flags() {
        let cmd = parse(&["train", "--graph", "g.bin"]).unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.epsilon_budget, None);
                assert_eq!(a.budget_warn_fraction, 0.8);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "train",
            "--graph",
            "g.bin",
            "--epsilon",
            "4",
            "--checkpoint-dir",
            "ck",
            "--epsilon-budget",
            "2.5",
            "--budget-warn-fraction",
            "0.5",
        ])
        .unwrap();
        match cmd {
            Command::Train(a) => {
                assert_eq!(a.epsilon_budget, Some(2.5));
                assert_eq!(a.budget_warn_fraction, 0.5);
            }
            other => panic!("{other:?}"),
        }
        // A budget needs a private, crash-safe run.
        assert!(parse(&["train", "--graph", "g", "--epsilon-budget", "1"])
            .unwrap_err()
            .contains("--epsilon"));
        assert!(parse(&[
            "train",
            "--graph",
            "g",
            "--epsilon",
            "3",
            "--epsilon-budget",
            "1"
        ])
        .unwrap_err()
        .contains("--checkpoint-dir"));
        for bad in ["0", "-1", "inf", "nan"] {
            assert!(
                parse(&[
                    "train",
                    "--graph",
                    "g",
                    "--epsilon",
                    "3",
                    "--checkpoint-dir",
                    "ck",
                    "--epsilon-budget",
                    bad,
                ])
                .is_err(),
                "--epsilon-budget {bad} must be rejected"
            );
        }
        assert!(parse(&[
            "train",
            "--graph",
            "g",
            "--epsilon",
            "3",
            "--checkpoint-dir",
            "ck",
            "--epsilon-budget",
            "1",
            "--budget-warn-fraction",
            "1.5",
        ])
        .unwrap_err()
        .contains("--budget-warn-fraction"));
    }

    #[test]
    fn monitor_needs_exactly_one_source() {
        let cmd = parse(&["monitor", "--input", "run.jsonl"]).unwrap();
        assert_eq!(
            cmd,
            Command::Monitor(MonitorArgs {
                input: Some("run.jsonl".into()),
                addr: None,
            })
        );
        let cmd = parse(&["monitor", "--addr", "127.0.0.1:7878"]).unwrap();
        assert_eq!(
            cmd,
            Command::Monitor(MonitorArgs {
                input: None,
                addr: Some("127.0.0.1:7878".into()),
            })
        );
        assert!(parse(&["monitor"]).unwrap_err().contains("--input"));
        assert!(
            parse(&["monitor", "--input", "a.jsonl", "--addr", "localhost:1",])
                .unwrap_err()
                .contains("not both")
        );
    }

    #[test]
    fn serve_slo_flags() {
        let cmd = parse(&["serve", "--graph", "g.bin", "--checkpoint", "m.json"]).unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.slo_target_ms, 250);
                assert_eq!(a.slo_window, 512);
                assert_eq!(a.slo_error_budget, 0.01);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "serve",
            "--graph",
            "g.bin",
            "--checkpoint",
            "m.json",
            "--slo-target-ms",
            "100",
            "--slo-window",
            "64",
            "--slo-error-budget",
            "0.05",
        ])
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.slo_target_ms, 100);
                assert_eq!(a.slo_window, 64);
                assert_eq!(a.slo_error_budget, 0.05);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&[
            "serve",
            "--graph",
            "g",
            "--checkpoint",
            "m",
            "--slo-window",
            "0",
        ])
        .unwrap_err()
        .contains("--slo-window"));
        assert!(parse(&[
            "serve",
            "--graph",
            "g",
            "--checkpoint",
            "m",
            "--slo-error-budget",
            "1",
        ])
        .unwrap_err()
        .contains("--slo-error-budget"));
    }

    #[test]
    fn evaluate_parses_seed_list() {
        let cmd = parse(&["evaluate", "--graph", "g.txt", "--seeds", "1, 2,3"]).unwrap();
        match cmd {
            Command::Evaluate(a) => {
                assert_eq!(a.seeds, vec![1, 2, 3]);
                assert_eq!(a.steps, Some(1));
                assert_eq!(a.trials, 1000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse(&["generate"]).unwrap_err().contains("--dataset"));
        assert!(parse(&["generate", "--dataset", "nope", "--output", "x"])
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(parse(&["train", "--graph", "g", "--bogus", "1"])
            .unwrap_err()
            .contains("unknown flags"));
        assert!(parse(&["frobnicate"])
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&["evaluate", "--graph", "g", "--seeds", "a,b"])
            .unwrap_err()
            .contains("bad --seeds"));
    }

    #[test]
    fn method_and_model_aliases() {
        assert_eq!(parse_method("PRIVIM*").unwrap(), Method::PrivImStar);
        assert_eq!(parse_method("non-private").unwrap(), Method::NonPrivate);
        assert_eq!(parse_model("sage").unwrap(), ModelKind::GraphSage);
        assert!(parse_model("transformer").is_err());
    }

    #[test]
    fn obs_flags_are_split_from_any_position() {
        let argv: Vec<String> = [
            "train",
            "--log-level",
            "debug",
            "--graph",
            "g.bin",
            "--telemetry-out",
            "run.jsonl",
            "--profile",
            "--metrics-out",
            "m.prom",
            "--report-out",
            "r.html",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (rest, obs) = split_obs_args(&argv).unwrap();
        assert_eq!(obs.log_level, Some(privim_obs::Level::Debug));
        assert_eq!(obs.telemetry_out.as_deref(), Some("run.jsonl"));
        assert!(obs.profile);
        assert_eq!(obs.profile_out, None);
        assert_eq!(obs.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(obs.report_out.as_deref(), Some("r.html"));
        assert_eq!(rest, vec!["train", "--graph", "g.bin"]);
        // The remaining args still parse as a normal train command.
        match parse_command(&rest).unwrap() {
            Command::Train(a) => assert_eq!(a.graph, "g.bin"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn recorder_and_chaos_kill_flags_parse() {
        let argv: Vec<String> = [
            "train",
            "--graph",
            "g.bin",
            "--recorder-out",
            "dump.jsonl",
            "--chaos-kill",
            "checkpoint.write.mid:2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (rest, obs) = split_obs_args(&argv).unwrap();
        assert_eq!(obs.recorder_out.as_deref(), Some("dump.jsonl"));
        assert_eq!(
            obs.chaos_kill,
            Some(("checkpoint.write.mid".to_string(), 2))
        );
        assert_eq!(rest, vec!["train", "--graph", "g.bin"]);
        for bad in ["nosite", "site:0", ":1", "site:x"] {
            let argv: Vec<String> = ["help", "--chaos-kill", bad]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert!(split_obs_args(&argv).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn profile_out_implies_profile() {
        let argv: Vec<String> = ["help", "--profile-out", "flame.txt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (_, obs) = split_obs_args(&argv).unwrap();
        assert!(obs.profile, "--profile-out must enable the profiler");
        assert_eq!(obs.profile_out.as_deref(), Some("flame.txt"));
        let argv: Vec<String> = ["--metrics-out"].iter().map(|s| s.to_string()).collect();
        assert!(split_obs_args(&argv).unwrap_err().contains("--metrics-out"));
    }

    #[test]
    fn obs_flags_default_to_absent_and_off_disables() {
        let argv: Vec<String> = ["account", "--epsilon", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, obs) = split_obs_args(&argv).unwrap();
        assert_eq!(obs, ObsArgs::default());
        assert_eq!(rest.len(), 3);
        let argv: Vec<String> = ["help", "--log-level", "off"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (_, obs) = split_obs_args(&argv).unwrap();
        assert_eq!(obs.log_level, None);
        assert!(obs.log_off);
        assert_eq!(obs.effective_level(), None, "off beats PRIVIM_LOG");
        let argv: Vec<String> = ["--log-level"].iter().map(|s| s.to_string()).collect();
        assert!(split_obs_args(&argv).unwrap_err().contains("--log-level"));
    }

    #[test]
    fn serve_defaults_and_overrides() {
        let cmd = parse(&["serve", "--graph", "g.bin", "--checkpoint", "m.json"]).unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.checkpoint.as_deref(), Some("m.json"));
                assert_eq!(a.follow, None);
                assert_eq!(a.poll_ms, 1_000);
                assert_eq!(a.addr, "127.0.0.1:7878");
                assert_eq!(a.workers, 4);
                assert_eq!(a.queue_depth, 64);
                assert_eq!(a.deadline_ms, 10_000);
                assert_eq!(a.max_trials, 100_000);
                assert_eq!(a.spread_threads, 2);
                assert_eq!(a.slow_ms, 1_000);
                assert!(!a.debug_endpoints, "debug endpoints default off");
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "serve",
            "--graph",
            "g.bin",
            "--checkpoint",
            "m.json",
            "--addr",
            "0.0.0.0:80",
            "--workers",
            "8",
            "--queue-depth",
            "128",
            "--deadline-ms",
            "250",
        ])
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.addr, "0.0.0.0:80");
                assert_eq!(a.workers, 8);
                assert_eq!(a.queue_depth, 128);
                assert_eq!(a.deadline_ms, 250);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "serve",
            "--graph",
            "g.bin",
            "--debug-endpoints",
            "--checkpoint",
            "m.json",
            "--slow-ms",
            "250",
        ])
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert!(a.debug_endpoints);
                assert_eq!(a.slow_ms, 250);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "--graph", "g.bin"])
            .unwrap_err()
            .contains("--checkpoint"));
        assert!(
            parse(&["serve", "--graph", "g", "--checkpoint", "m", "--bogus", "1"])
                .unwrap_err()
                .contains("unknown flags")
        );
    }

    #[test]
    fn serve_follow_mode() {
        let cmd = parse(&[
            "serve",
            "--graph",
            "g.bin",
            "--follow",
            "ckpts",
            "--poll-ms",
            "200",
        ])
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.checkpoint, None);
                assert_eq!(a.follow.as_deref(), Some("ckpts"));
                assert_eq!(a.poll_ms, 200);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&[
            "serve",
            "--graph",
            "g",
            "--checkpoint",
            "m",
            "--follow",
            "d",
        ])
        .unwrap_err()
        .contains("not both"));
        assert!(
            parse(&["serve", "--graph", "g", "--follow", "d", "--poll-ms", "0",])
                .unwrap_err()
                .contains("--poll-ms")
        );
    }

    #[test]
    fn route_defaults_and_overrides() {
        let cmd = parse(&["route", "--backends", "127.0.0.1:1, 127.0.0.1:2"]).unwrap();
        match cmd {
            Command::Route(a) => {
                assert_eq!(a.backends, vec!["127.0.0.1:1", "127.0.0.1:2"]);
                assert_eq!(a.addr, "127.0.0.1:7800");
                assert_eq!(a.retries, 2);
                assert_eq!(a.backoff_ms, 50);
                assert_eq!(a.timeout_ms, 10_000);
                assert_eq!(a.hedge_ms, None);
                assert_eq!(a.breaker_failures, 3);
                assert_eq!(a.breaker_cooldown_ms, 1_000);
                assert_eq!(a.health_interval_ms, 500);
                assert_eq!(a.probe_down_after, 2);
                assert_eq!(a.seed, 0);
                assert_eq!(a.workers, 4);
                assert_eq!(a.queue_depth, 64);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "route",
            "--backends",
            "127.0.0.1:9",
            "--hedge-ms",
            "30",
            "--retries",
            "5",
            "--probe-down-after",
            "3",
        ])
        .unwrap();
        match cmd {
            Command::Route(a) => {
                assert_eq!(a.hedge_ms, Some(30));
                assert_eq!(a.retries, 5);
                assert_eq!(a.probe_down_after, 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["route"]).unwrap_err().contains("--backends"));
        assert!(parse(&["route", "--backends", " , "])
            .unwrap_err()
            .contains("at least one"));
        assert!(
            parse(&["route", "--backends", "a:1", "--breaker-failures", "0"])
                .unwrap_err()
                .contains("--breaker-failures")
        );
    }

    #[test]
    fn chaos_defaults_and_bounds() {
        let cmd = parse(&[
            "chaos",
            "--listen",
            "127.0.0.1:0",
            "--upstream",
            "127.0.0.1:7878",
        ])
        .unwrap();
        match cmd {
            Command::Chaos(a) => {
                assert_eq!(a.listen, "127.0.0.1:0");
                assert_eq!(a.upstream, "127.0.0.1:7878");
                assert_eq!(a.seed, 0);
                assert_eq!(a.fault_rate, 0.1);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&[
            "chaos",
            "--listen",
            "a:1",
            "--upstream",
            "b:2",
            "--fault-rate",
            "1.5",
        ])
        .unwrap_err()
        .contains("--fault-rate"));
        assert!(parse(&["chaos", "--listen", "a:1"])
            .unwrap_err()
            .contains("upstream"));
    }

    #[test]
    fn trace_view_sources_and_filters() {
        let cmd = parse(&["trace-view", "--spans", "router.jsonl, serve.jsonl"]).unwrap();
        assert_eq!(
            cmd,
            Command::TraceView(TraceViewArgs {
                spans: vec!["router.jsonl".into(), "serve.jsonl".into()],
                request_id: None,
                trace: None,
                addr: None,
            })
        );
        let cmd = parse(&[
            "trace-view",
            "--addr",
            "127.0.0.1:7800",
            "--request-id",
            "req-42",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::TraceView(TraceViewArgs {
                spans: Vec::new(),
                request_id: Some("req-42".into()),
                trace: None,
                addr: Some("127.0.0.1:7800".into()),
            })
        );
        let hex = "0123456789abcdef0123456789abcdef";
        let cmd = parse(&["trace-view", "--spans", "a.jsonl", "--trace", hex]).unwrap();
        match cmd {
            Command::TraceView(a) => assert_eq!(a.trace.as_deref(), Some(hex)),
            other => panic!("{other:?}"),
        }
        assert!(parse(&["trace-view"]).unwrap_err().contains("--spans"));
        assert!(
            parse(&["trace-view", "--spans", "a.jsonl", "--addr", "h:1"])
                .unwrap_err()
                .contains("not both")
        );
        assert!(
            parse(&["trace-view", "--spans", "a.jsonl", "--trace", "zz"])
                .unwrap_err()
                .contains("--trace")
        );
        assert!(parse(&[
            "trace-view",
            "--spans",
            "a.jsonl",
            "--trace",
            hex,
            "--request-id",
            "x",
        ])
        .unwrap_err()
        .contains("not both"));
    }

    #[test]
    fn span_export_flag_is_split() {
        let argv: Vec<String> = ["route", "--backends", "a:1", "--span-export", "spans.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, obs) = split_obs_args(&argv).unwrap();
        assert_eq!(obs.span_export.as_deref(), Some("spans.jsonl"));
        assert_eq!(rest, vec!["route", "--backends", "a:1"]);
        let argv: Vec<String> = ["--span-export"].iter().map(|s| s.to_string()).collect();
        assert!(split_obs_args(&argv).unwrap_err().contains("--span-export"));
    }

    #[test]
    fn account_defaults() {
        let cmd = parse(&["account", "--epsilon", "2.5"]).unwrap();
        match cmd {
            Command::Account(a) => {
                assert_eq!(a.epsilon, 2.5);
                assert_eq!(a.delta, 1e-5);
                assert_eq!(a.occurrences, 4);
                assert_eq!(a.checkpoint, None);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["account", "--epsilon", "2", "--checkpoint", "m.json"]).unwrap();
        match cmd {
            Command::Account(a) => assert_eq!(a.checkpoint.as_deref(), Some("m.json")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn audit_defaults_and_overrides() {
        let cmd = parse(&["audit", "--graph", "g.bin", "--checkpoint-dirs", "ck"]).unwrap();
        match cmd {
            Command::Audit(a) => {
                assert_eq!(a.graph, "g.bin");
                assert_eq!(a.checkpoint_dirs, vec!["ck".to_string()]);
                assert_eq!(a.attack, AuditAttack::Both);
                assert_eq!(a.mode, AuditMode::WhiteBox);
                assert_eq!(a.addr, None);
                assert_eq!(a.seed, 42);
                assert_eq!(a.low_fpr, 0.1);
                assert_eq!(a.max_pairs, 200_000);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "audit",
            "--graph",
            "g.bin",
            "--checkpoint-dirs",
            "loose, tight",
            "--attack",
            "membership",
            "--mode",
            "black-box",
            "--addr",
            "127.0.0.1:7878",
            "--seed",
            "7",
            "--json",
            "audit.json",
            "--low-fpr",
            "0.05",
            "--max-pairs",
            "5000",
        ])
        .unwrap();
        match cmd {
            Command::Audit(a) => {
                assert_eq!(
                    a.checkpoint_dirs,
                    vec!["loose".to_string(), "tight".to_string()]
                );
                assert_eq!(a.attack, AuditAttack::Membership);
                assert_eq!(a.mode, AuditMode::BlackBox);
                assert_eq!(a.addr.as_deref(), Some("127.0.0.1:7878"));
                assert_eq!(a.seed, 7);
                assert_eq!(a.json.as_deref(), Some("audit.json"));
                assert_eq!(a.low_fpr, 0.05);
                assert_eq!(a.max_pairs, 5000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn audit_rejects_bad_combinations() {
        // Black-box without a server address is meaningless.
        assert!(parse(&[
            "audit",
            "--graph",
            "g",
            "--checkpoint-dirs",
            "ck",
            "--mode",
            "black-box",
        ])
        .unwrap_err()
        .contains("--addr"));
        assert!(parse(&["audit", "--graph", "g", "--checkpoint-dirs", ","])
            .unwrap_err()
            .contains("--checkpoint-dirs"));
        assert!(parse(&[
            "audit",
            "--graph",
            "g",
            "--checkpoint-dirs",
            "ck",
            "--attack",
            "bogus",
        ])
        .unwrap_err()
        .contains("bad --attack"));
        for bad in ["0", "1", "-0.5"] {
            assert!(
                parse(&[
                    "audit",
                    "--graph",
                    "g",
                    "--checkpoint-dirs",
                    "ck",
                    "--low-fpr",
                    bad,
                ])
                .is_err(),
                "--low-fpr {bad} must be rejected"
            );
        }
        assert!(parse(&[
            "audit",
            "--graph",
            "g",
            "--checkpoint-dirs",
            "ck",
            "--max-pairs",
            "0",
        ])
        .unwrap_err()
        .contains("--max-pairs"));
    }
}
