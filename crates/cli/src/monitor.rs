//! `privim monitor` — a deterministic text dashboard over live health
//! telemetry.
//!
//! Two sources, one renderer:
//!
//! - `--input <telemetry.jsonl>` tails a finished (or in-flight) run's
//!   event stream: training progress, the ε trace, every
//!   `budget_warning` / `budget_halt` event and every watchdog alert
//!   transition, in file order.
//! - `--addr <host:port>` polls a running server once: `GET /metrics`
//!   for the `privim_alert_active` and `privim_serve_slo_*` series plus
//!   `GET /slo` for the windowed SLO snapshot.
//!
//! The output is a pure function of the bytes read — no wall clocks, no
//! re-ordering — so CI can diff it and operators can watch it under
//! `watch -n1`.

use std::fmt::Write as _;

use privim_obs::console;
use privim_obs::json::{parse, JsonValue};
use privim_obs::RunTelemetry;

use crate::args::MonitorArgs;

pub fn run(a: &MonitorArgs) -> Result<(), String> {
    let dashboard = match (&a.input, &a.addr) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read telemetry file {path}: {e}"))?;
            render_jsonl_dashboard(path, &text)
        }
        (None, Some(addr)) => render_live_dashboard(addr)?,
        _ => unreachable!("args parser enforces exactly one source"),
    };
    console(dashboard);
    Ok(())
}

/// One event row the dashboard cares about, in file order.
struct EventRow {
    level: String,
    message: String,
    detail: String,
}

fn field_string(fields: &JsonValue, key: &str) -> Option<String> {
    let v = fields.get(key)?;
    match v {
        JsonValue::Str(s) => Some(s.clone()),
        JsonValue::Num(n) => Some(format!("{n}")),
        JsonValue::Bool(b) => Some(format!("{b}")),
        _ => None,
    }
}

/// Renders `key=value` for every listed field that is present.
fn format_fields(fields: &JsonValue, keys: &[&str]) -> String {
    let mut out = String::new();
    for key in keys {
        if let Some(v) = field_string(fields, key) {
            if !out.is_empty() {
                out.push(' ');
            }
            let _ = write!(out, "{key}={v}");
        }
    }
    out
}

/// Builds the dashboard for a telemetry JSONL stream.
pub fn render_jsonl_dashboard(source: &str, text: &str) -> String {
    let mut budget_events: Vec<EventRow> = Vec::new();
    let mut alert_events: Vec<EventRow> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(event) = parse(line) else { continue };
        let target = event.get("target").and_then(|v| v.as_str()).unwrap_or("");
        let message = event.get("message").and_then(|v| v.as_str()).unwrap_or("");
        let level = event
            .get("level")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        let fields = event.get("fields").cloned().unwrap_or(JsonValue::Null);
        match (target, message) {
            ("dp", "budget_warning") => budget_events.push(EventRow {
                level,
                message: message.to_string(),
                detail: format_fields(
                    &fields,
                    &["epoch", "budget", "projected", "steps_remaining"],
                ),
            }),
            ("dp", "budget_halt") => budget_events.push(EventRow {
                level,
                message: message.to_string(),
                detail: format_fields(
                    &fields,
                    &[
                        "epoch",
                        "budget",
                        "epsilon_spent",
                        "projected_next",
                        "fresh_steps",
                    ],
                ),
            }),
            ("watch", "alert" | "alert_resolved") => alert_events.push(EventRow {
                level,
                message: message.to_string(),
                detail: format_fields(&fields, &["rule", "metric", "tick", "value", "detail"]),
            }),
            _ => {}
        }
    }

    let telemetry = RunTelemetry::from_jsonl(text).ok();
    let mut out = String::new();
    let _ = writeln!(out, "privim monitor — {source}");
    if let Some(t) = &telemetry {
        let _ = writeln!(out, "run");
        if let Some(seed) = t.seed {
            let _ = writeln!(out, "  seed: {seed}");
        }
        let _ = writeln!(out, "  events: {}", t.events_total);
        let _ = writeln!(out, "training");
        let _ = writeln!(out, "  epochs recorded: {}", t.epochs.len());
        if let Some(last) = t.epochs.last() {
            let _ = writeln!(out, "  last loss: {:.6}", last.loss);
        }
        match t.final_epsilon() {
            Some(eps) => {
                let _ = writeln!(out, "  epsilon spent: {eps}");
                let _ = writeln!(out, "  epsilon steps: {}", t.epsilon_trace.len());
            }
            None => {
                let _ = writeln!(out, "  epsilon spent: - (non-private)");
            }
        }
    }
    let _ = writeln!(out, "privacy budget");
    if budget_events.is_empty() {
        let _ = writeln!(out, "  (no budget events)");
    }
    for e in &budget_events {
        let _ = writeln!(out, "  [{}] {} {}", e.level, e.message, e.detail);
    }
    let _ = writeln!(out, "alerts");
    if alert_events.is_empty() {
        let _ = writeln!(out, "  (no alert transitions)");
    }
    for e in &alert_events {
        let _ = writeln!(out, "  [{}] {} {}", e.level, e.message, e.detail);
    }
    out
}

/// Polls a running server once and renders its alert and SLO state.
fn render_live_dashboard(addr: &str) -> Result<String, String> {
    let mut client = privim_serve::HttpClient::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let metrics = client
        .get("/metrics")
        .map_err(|e| format!("GET /metrics from {addr} failed: {e}"))?;
    if metrics.status != 200 {
        return Err(format!(
            "GET /metrics from {addr} answered {}",
            metrics.status
        ));
    }
    let metrics_text = String::from_utf8_lossy(&metrics.body).into_owned();
    // /slo answers 404 when the operator did not enable tracking; the
    // dashboard still renders the alert section in that case.
    let slo_body = match client.get("/slo") {
        Ok(resp) if resp.status == 200 => Some(String::from_utf8_lossy(&resp.body).into_owned()),
        _ => None,
    };
    Ok(render_metrics_dashboard(
        addr,
        &metrics_text,
        slo_body.as_deref(),
    ))
}

/// Builds the dashboard for a Prometheus scrape (+ optional /slo body).
pub fn render_metrics_dashboard(source: &str, metrics: &str, slo_json: Option<&str>) -> String {
    let mut alert_lines: Vec<&str> = Vec::new();
    let mut slo_lines: Vec<&str> = Vec::new();
    let mut serve_lines: Vec<&str> = Vec::new();
    for line in metrics.lines() {
        if line.starts_with('#') {
            continue;
        }
        if line.starts_with("privim_alert_active") {
            alert_lines.push(line);
        } else if line.starts_with("privim_serve_slo_") {
            slo_lines.push(line);
        } else if line.starts_with("privim_serve_") {
            serve_lines.push(line);
        }
    }
    alert_lines.sort_unstable();
    slo_lines.sort_unstable();
    serve_lines.sort_unstable();

    let mut out = String::new();
    let _ = writeln!(out, "privim monitor — {source}");
    let _ = writeln!(out, "alerts");
    if alert_lines.is_empty() {
        let _ = writeln!(out, "  (no watchdog armed)");
    }
    for line in &alert_lines {
        let firing = line.ends_with(" 1");
        let mark = if firing { "FIRING " } else { "ok     " };
        let _ = writeln!(out, "  {mark}{line}");
    }
    let _ = writeln!(out, "slo");
    match slo_json {
        Some(body) => {
            let _ = writeln!(out, "  {body}");
        }
        None => {
            let _ = writeln!(out, "  (slo tracking not enabled)");
        }
    }
    for line in &slo_lines {
        let _ = writeln!(out, "  {line}");
    }
    let _ = writeln!(out, "serve");
    if serve_lines.is_empty() {
        let _ = writeln!(out, "  (no serve series)");
    }
    for line in &serve_lines {
        let _ = writeln!(out, "  {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_dashboard_surfaces_budget_and_alert_events() {
        let text = concat!(
            r#"{"ts_us":1,"level":"warn","target":"dp","message":"budget_warning","fields":{"epoch":3,"budget":2.0,"projected":1.7,"steps_remaining":2}}"#,
            "\n",
            r#"{"ts_us":2,"level":"warn","target":"watch","message":"alert","fields":{"rule":"epsilon_budget","metric":"dp.epsilon_next","tick":3,"value":1.7,"detail":"burn"}}"#,
            "\n",
            r#"{"ts_us":3,"level":"warn","target":"dp","message":"budget_halt","fields":{"epoch":5,"budget":2.0,"epsilon_spent":1.9,"projected_next":2.2,"fresh_steps":5}}"#,
            "\n",
        );
        let dash = render_jsonl_dashboard("test.jsonl", text);
        assert!(dash.contains("budget_warning epoch=3"), "{dash}");
        assert!(dash.contains("budget_halt epoch=5"), "{dash}");
        assert!(dash.contains("alert rule=epsilon_budget"), "{dash}");
        assert_eq!(
            dash,
            render_jsonl_dashboard("test.jsonl", text),
            "dashboard must be deterministic"
        );
    }

    #[test]
    fn jsonl_dashboard_handles_empty_and_garbage_input() {
        let dash = render_jsonl_dashboard("empty.jsonl", "not json\n\n{broken\n");
        assert!(dash.contains("(no budget events)"), "{dash}");
        assert!(dash.contains("(no alert transitions)"), "{dash}");
    }

    #[test]
    fn metrics_dashboard_marks_firing_alerts_and_sorts_series() {
        let metrics = concat!(
            "# TYPE privim_alert_active gauge\n",
            "privim_alert_active{rule=\"slo_latency_p99\",metric=\"serve.slo.p99_ms\"} 1\n",
            "privim_alert_active{rule=\"slo_error_budget\",metric=\"serve.slo.budget_burn\"} 0\n",
            "privim_serve_slo_p99_ms 12.5\n",
            "privim_serve_requests 40\n",
            "privim_other 1\n",
        );
        let dash = render_metrics_dashboard("127.0.0.1:0", metrics, Some("{\"p99_ms\":12.5}"));
        assert!(
            dash.contains("FIRING privim_alert_active{rule=\"slo_latency_p99\""),
            "{dash}"
        );
        assert!(
            dash.contains("ok     privim_alert_active{rule=\"slo_error_budget\""),
            "{dash}"
        );
        assert!(dash.contains("privim_serve_slo_p99_ms 12.5"), "{dash}");
        assert!(dash.contains("{\"p99_ms\":12.5}"), "{dash}");
        assert!(!dash.contains("privim_other"), "{dash}");
        let slo_pos = dash.find("privim_serve_slo_p99_ms").unwrap();
        let err_pos = dash.find("slo_error_budget").unwrap();
        assert!(err_pos < slo_pos, "alerts render before slo series");
    }
}
