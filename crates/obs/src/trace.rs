//! Trace correlation: deterministic 128-bit trace ids with a
//! thread-local context stack.
//!
//! A [`TraceContext`] names one causal chain — a training run, a served
//! request — with a 128-bit `trace_id` plus a 64-bit `span_id` and
//! optional parent. Every id is derived with splitmix64 from a caller
//! seed (the master seed, an `X-Request-Id` header, a request counter):
//! **never** from wall-clock entropy, and never by consuming an RNG
//! stream, so arming tracing cannot perturb seeded results.
//!
//! Contexts live on a thread-local stack. While one is active (via
//! [`TraceContext::enter`] or [`with_trace`]), every event built by the
//! `event!` macros is stamped with the top-of-stack ids (see
//! [`crate::Event::trace`]), and spans push a child context so nested
//! emissions carry the span's own `span_id` with its parent linked.
//! Worker threads do not inherit the stack — propagate explicitly with
//! [`with_trace`], as the parallel Monte-Carlo estimator does.
//!
//! One context per process can additionally be promoted to the
//! *run trace* ([`set_run_trace`]): exporters that render process-wide
//! state (Prometheus text, the HTML report) label their output with it.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fault::splitmix64;

/// Domain-separation tags so the three id streams derived from one seed
/// never collide with each other or with epoch-seed derivation.
const TAG_TRACE_HI: u64 = 0x7452_4163_6548_6921;
const TAG_TRACE_LO: u64 = 0x7452_4163_654c_6f21;
const TAG_SPAN: u64 = 0x5350_414e_5f49_445f;
/// Tag for [`TraceContext::child_n`]: "child_n_" as ASCII bytes.
const TAG_CHILD: u64 = 0x6368_696c_645f_6e5f;

/// Canonical (lower-case) name of the cross-process propagation header.
/// The wire form is produced by [`TraceContext::to_trace_header`] and
/// consumed by [`parse_trace_header`].
pub const TRACE_HEADER: &str = "x-privim-trace";

/// Well-known child indices for [`TraceContext::child_n`], so every
/// process in the tier derives the *same* span id for the same hop and
/// tests can assert exact trees. Children of a request span:
///
/// * [`CHILD_QUEUE_WAIT`] — time on the accept queue before a worker
///   picked the connection up.
/// * [`CHILD_HANDLE`] — handler execution (worker compute).
/// * [`CHILD_ATTEMPT_BASE`]` + k` — the router's k-th forwarding
///   attempt (k is 1-based, so attempts use indices 2, 3, …).
/// * [`CHILD_HEDGE_BASE`]` + k` — the hedge leg raced against
///   attempt k (disjoint from attempt indices for up to 31 retries).
///
/// A replica derives its request span from the router's attempt span
/// (recovered from the trace header) at index [`CHILD_REMOTE_REQUEST`].
pub const CHILD_QUEUE_WAIT: u64 = 0;
/// Handler-execution child index (see [`CHILD_QUEUE_WAIT`]).
pub const CHILD_HANDLE: u64 = 1;
/// Base for per-attempt child indices (see [`CHILD_QUEUE_WAIT`]).
pub const CHILD_ATTEMPT_BASE: u64 = 1;
/// Base for hedge-leg child indices (see [`CHILD_QUEUE_WAIT`]).
pub const CHILD_HEDGE_BASE: u64 = 33;
/// Child index a replica uses to derive its request span from the
/// propagated attempt span (see [`CHILD_QUEUE_WAIT`]).
pub const CHILD_REMOTE_REQUEST: u64 = 0;

/// One node in a causal chain: which trace, which span, and the parent
/// span (if any). `Copy`, 40 bytes, cheap to stamp onto every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span in the chain.
    pub trace_id: u128,
    /// This span's 64-bit id.
    pub span_id: u64,
    /// The parent span's id (`None` for a root context).
    pub parent_span_id: Option<u64>,
}

impl TraceContext {
    /// A root context derived deterministically from `seed` — the same
    /// seed always yields the same trace id.
    pub fn from_seed(seed: u64) -> TraceContext {
        let hi = splitmix64(seed ^ TAG_TRACE_HI);
        let lo = splitmix64(hi ^ TAG_TRACE_LO);
        TraceContext {
            trace_id: ((hi as u128) << 64) | lo as u128,
            span_id: splitmix64(lo ^ TAG_SPAN),
            parent_span_id: None,
        }
    }

    /// A root context from an arbitrary request-id string (e.g. an
    /// `X-Request-Id` header), folding its bytes through splitmix64.
    /// Deterministic: the same id always maps to the same trace, so a
    /// client-chosen id can be correlated offline.
    pub fn from_request_id(id: &str) -> TraceContext {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in id.as_bytes() {
            h = splitmix64(h ^ b as u64);
        }
        h = splitmix64(h ^ id.len() as u64);
        TraceContext::from_seed(h)
    }

    /// A child context: same trace, fresh span id, parent set to this
    /// span. Child ids mix in a process-local sequence number (one
    /// relaxed `fetch_add`) — unique without touching the wall clock.
    pub fn child(&self) -> TraceContext {
        static CHILD_SEQ: AtomicU64 = AtomicU64::new(1);
        let n = CHILD_SEQ.fetch_add(1, Ordering::Relaxed);
        TraceContext {
            trace_id: self.trace_id,
            span_id: splitmix64(self.span_id ^ splitmix64(n)),
            parent_span_id: Some(self.span_id),
        }
    }

    /// A child at a *named* index: same trace, parent set to this span,
    /// span id a pure function of `(self.span_id, n)` — no process
    /// state, no clock. Two processes that agree on the parent span and
    /// the index (see [`CHILD_QUEUE_WAIT`] and friends) derive the same
    /// id, which is what lets tests assert exact cross-process trees.
    pub fn child_n(&self, n: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: splitmix64(self.span_id ^ splitmix64(TAG_CHILD ^ n)),
            parent_span_id: Some(self.span_id),
        }
    }

    /// Serializes this context for the `X-Privim-Trace` header:
    /// `<trace-id:032x>-<span-id:016x>-<flags:02x>`. The span id field
    /// is *this* span's id — the receiver treats it as the remote
    /// parent. Flags are always `01` (sampled) today.
    pub fn to_trace_header(&self) -> String {
        format!("{:032x}-{:016x}-01", self.trace_id, self.span_id)
    }

    /// The trace id as 32 lowercase hex digits (W3C traceparent style).
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// The span id as 16 lowercase hex digits.
    pub fn span_id_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }

    /// Pushes this context onto the thread's stack; it stays active (and
    /// stamps every emission on this thread) until the guard drops.
    pub fn enter(self) -> TraceGuard {
        TRACE_STACK.with(|s| s.borrow_mut().push(self));
        TraceGuard {
            _not_send: std::marker::PhantomData,
        }
    }
}

/// Parses an `X-Privim-Trace` header value produced by
/// [`TraceContext::to_trace_header`]. Validation is strict — exactly
/// three `-`-separated fields of 32, 16, and 2 *lowercase* hex digits —
/// so a hostile or corrupted header degrades to "no context" rather
/// than poisoning the trace tree. The returned context names the
/// **remote parent** span: its `span_id` is the sender's span id and
/// `parent_span_id` is `None` (the sender's own ancestry is not on the
/// wire). Derive local spans from it with [`TraceContext::child_n`].
pub fn parse_trace_header(value: &str) -> Option<TraceContext> {
    fn hex_field(s: &str, len: usize) -> Option<u128> {
        if s.len() != len
            || !s
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        u128::from_str_radix(s, 16).ok()
    }
    let mut parts = value.split('-');
    let (trace, span, flags) = (parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() {
        return None;
    }
    let trace_id = hex_field(trace, 32)?;
    let span_id = hex_field(span, 16)? as u64;
    hex_field(flags, 2)?;
    Some(TraceContext {
        trace_id,
        span_id,
        parent_span_id: None,
    })
}

thread_local! {
    /// The active contexts on this thread, outermost first.
    static TRACE_STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard from [`TraceContext::enter`]; pops the context on drop.
/// Deliberately `!Send`: a context belongs to the thread that entered it.
pub struct TraceGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The innermost active context on this thread, if any.
pub fn current_trace() -> Option<TraceContext> {
    TRACE_STACK.with(|s| s.borrow().last().copied())
}

/// Runs `f` with `ctx` active. This is the hand-off primitive for worker
/// threads, which never inherit the spawning thread's stack.
pub fn with_trace<T>(ctx: TraceContext, f: impl FnOnce() -> T) -> T {
    let _guard = ctx.enter();
    f()
}

/// Pushes a child of the current context for a span, if one is active.
/// Returns whether a context was pushed (the span must pop it on close).
pub(crate) fn push_span_child() -> bool {
    TRACE_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last().copied() {
            Some(parent) => {
                stack.push(parent.child());
                true
            }
            None => false,
        }
    })
}

/// Pops the context [`push_span_child`] pushed.
pub(crate) fn pop_span_child() {
    TRACE_STACK.with(|s| {
        s.borrow_mut().pop();
    });
}

static RUN_TRACE: Mutex<Option<TraceContext>> = Mutex::new(None);

/// Promotes `ctx` to the process-wide run trace, used by exporters that
/// render process-global state (Prometheus, the HTML report) to label
/// their output. Replaces any previous run trace.
pub fn set_run_trace(ctx: TraceContext) {
    *RUN_TRACE.lock().unwrap_or_else(|e| e.into_inner()) = Some(ctx);
}

/// Clears the process-wide run trace.
pub fn clear_run_trace() {
    *RUN_TRACE.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The process-wide run trace, if one was set.
pub fn run_trace() -> Option<TraceContext> {
    *RUN_TRACE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_deterministic_and_seed_sensitive() {
        let a = TraceContext::from_seed(42);
        let b = TraceContext::from_seed(42);
        let c = TraceContext::from_seed(43);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, c.trace_id);
        assert_eq!(a.parent_span_id, None);
        assert_eq!(a.trace_id_hex().len(), 32);
        assert_eq!(a.span_id_hex().len(), 16);
    }

    #[test]
    fn request_id_derivation_is_stable_and_collision_averse() {
        let a = TraceContext::from_request_id("req-abc-123");
        let b = TraceContext::from_request_id("req-abc-123");
        assert_eq!(a, b);
        // Nearby ids, the empty id, and hostile bytes all stay distinct.
        let ids = ["req-abc-124", "", "req", "\"\n\\", "req-abc-123 "];
        for id in ids {
            assert_ne!(
                TraceContext::from_request_id(id).trace_id,
                a.trace_id,
                "{id:?}"
            );
        }
    }

    #[test]
    fn children_share_the_trace_and_link_their_parent() {
        let root = TraceContext::from_seed(7);
        let child = root.child();
        let grandchild = child.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, Some(root.span_id));
        assert_eq!(grandchild.parent_span_id, Some(child.span_id));
        assert_ne!(child.span_id, root.span_id);
        assert_ne!(grandchild.span_id, child.span_id);
    }

    #[test]
    fn stack_nests_and_unwinds() {
        assert_eq!(current_trace(), None);
        let outer = TraceContext::from_seed(1);
        {
            let _g = outer.enter();
            assert_eq!(current_trace(), Some(outer));
            let inner = outer.child();
            {
                let _g2 = inner.enter();
                assert_eq!(current_trace(), Some(inner));
            }
            assert_eq!(current_trace(), Some(outer));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn with_trace_scopes_the_context_to_the_closure() {
        let ctx = TraceContext::from_seed(5);
        let seen = with_trace(ctx, current_trace);
        assert_eq!(seen, Some(ctx));
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn worker_threads_do_not_inherit_but_can_adopt() {
        let ctx = TraceContext::from_seed(11);
        let _g = ctx.enter();
        let (bare, adopted) = std::thread::spawn(move || {
            let bare = current_trace();
            let adopted = with_trace(ctx, current_trace);
            (bare, adopted)
        })
        .join()
        .unwrap();
        assert_eq!(bare, None, "stacks are thread-local");
        assert_eq!(adopted, Some(ctx));
    }

    #[test]
    fn child_n_is_pure_and_index_sensitive() {
        let root = TraceContext::from_seed(7);
        let a = root.child_n(0);
        let b = root.child_n(0);
        let c = root.child_n(1);
        assert_eq!(a, b, "same parent + same index → same span id");
        assert_ne!(a.span_id, c.span_id);
        assert_eq!(a.trace_id, root.trace_id);
        assert_eq!(a.parent_span_id, Some(root.span_id));
        // Indices used by the tier never collide under one parent.
        let indices = [
            CHILD_QUEUE_WAIT,
            CHILD_HANDLE,
            CHILD_ATTEMPT_BASE + 1,
            CHILD_ATTEMPT_BASE + 2,
            CHILD_HEDGE_BASE + 1,
        ];
        let mut ids: Vec<u64> = indices.iter().map(|&n| root.child_n(n).span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), indices.len());
    }

    #[test]
    fn trace_header_round_trips() {
        let ctx = TraceContext::from_seed(42).child_n(3);
        let header = ctx.to_trace_header();
        assert_eq!(header.len(), 32 + 1 + 16 + 1 + 2);
        let parsed = parse_trace_header(&header).unwrap();
        assert_eq!(parsed.trace_id, ctx.trace_id);
        assert_eq!(parsed.span_id, ctx.span_id);
        assert_eq!(parsed.parent_span_id, None, "ancestry is not on the wire");
        // The receiver re-derives the same child the sender would.
        assert_eq!(parsed.child_n(5).span_id, {
            let mut c = ctx;
            c.parent_span_id = None;
            c.child_n(5).span_id
        });
    }

    #[test]
    fn trace_header_parsing_is_strict() {
        let good = TraceContext::from_seed(1).to_trace_header();
        assert!(parse_trace_header(&good).is_some());
        let bad = [
            "",
            "not-a-trace",
            &good.to_ascii_uppercase(),
            &good[1..],
            &format!("{good}-00"),
            &good.replace('-', "_"),
            &format!("{}-zz", &good[..good.len() - 3]),
            " ",
        ];
        for value in bad {
            assert_eq!(parse_trace_header(value), None, "{value:?}");
        }
    }

    #[test]
    fn run_trace_is_settable_and_clearable() {
        // RUN_TRACE is process-global; serialize with other tests that
        // set it (e.g. the Prometheus info-series test).
        let _guard = crate::sink::global_sink_lock();
        let ctx = TraceContext::from_seed(99);
        set_run_trace(ctx);
        assert_eq!(run_trace(), Some(ctx));
        clear_run_trace();
        assert_eq!(run_trace(), None);
    }
}
