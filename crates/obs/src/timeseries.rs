//! Fixed-capacity per-metric time-series rings.
//!
//! The metrics registry answers "how much, in total" — counters, gauges
//! and cumulative histograms. A live watchdog needs the *shape over
//! time*: the last N `(tick, value)` points of a signal, its smoothed
//! level, and its recent rate of change. [`TimeSeries`] stores exactly
//! that in a ring preallocated at construction: the steady-state
//! [`TimeSeries::push`] is a slot write plus a handful of float ops —
//! no allocation, mirroring the flight recorder's contract. Ticks are
//! caller-chosen (epoch numbers, request counts, or clock micros via
//! [`SeriesBoard::record`]), which is what makes watchdog evaluation
//! deterministic for seeded runs: the same run produces the same
//! `(tick, value)` stream regardless of wall time.

use std::sync::{Arc, Mutex};

use crate::clock::{Clock, MonotonicClock};

/// Default EWMA smoothing factor (weight of the newest sample).
pub const DEFAULT_EWMA_ALPHA: f64 = 0.2;

/// A bounded ring of `(tick, value)` points with an exponentially
/// weighted moving average maintained incrementally over *all* pushed
/// points (not just the retained window).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
    next: usize,
    filled: usize,
    pushed: u64,
    ewma_alpha: f64,
    ewma: f64,
    has_ewma: bool,
}

impl TimeSeries {
    /// A series retaining the most recent `capacity` points, smoothing
    /// with [`DEFAULT_EWMA_ALPHA`].
    pub fn with_capacity(capacity: usize) -> TimeSeries {
        TimeSeries::with_ewma_alpha(capacity, DEFAULT_EWMA_ALPHA)
    }

    /// A series with an explicit EWMA smoothing factor in `(0, 1]`.
    pub fn with_ewma_alpha(capacity: usize, alpha: f64) -> TimeSeries {
        assert!(capacity > 0, "time series capacity must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        TimeSeries {
            points: vec![(0, 0.0); capacity],
            next: 0,
            filled: 0,
            pushed: 0,
            ewma_alpha: alpha,
            ewma: 0.0,
            has_ewma: false,
        }
    }

    /// Appends one point. Non-finite values are dropped (a poisoned
    /// sample must not poison the EWMA). Zero allocation.
    pub fn push(&mut self, tick: u64, value: f64) {
        if !value.is_finite() {
            return;
        }
        let capacity = self.points.len();
        self.points[self.next] = (tick, value);
        self.next = (self.next + 1) % capacity;
        self.filled = (self.filled + 1).min(capacity);
        self.pushed += 1;
        if self.has_ewma {
            self.ewma = self.ewma_alpha * value + (1.0 - self.ewma_alpha) * self.ewma;
        } else {
            self.ewma = value;
            self.has_ewma = true;
        }
    }

    /// Retained points (≤ capacity).
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True before the first finite push.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.points.len()
    }

    /// Total points ever pushed (`pushed - len` = points evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Newest point.
    pub fn latest(&self) -> Option<(u64, f64)> {
        if self.filled == 0 {
            return None;
        }
        let capacity = self.points.len();
        Some(self.points[(self.next + capacity - 1) % capacity])
    }

    /// Oldest retained point.
    pub fn oldest(&self) -> Option<(u64, f64)> {
        self.iter_ordered().next()
    }

    /// The exponentially weighted moving average over all pushed values.
    pub fn ewma(&self) -> Option<f64> {
        self.has_ewma.then_some(self.ewma)
    }

    /// Windowed rate of change: `Δvalue / Δtick` across the most recent
    /// `window` points. `None` until two distinct ticks are in range —
    /// for a cumulative signal this is its burn rate per tick.
    pub fn rate(&self, window: usize) -> Option<f64> {
        let take = window.min(self.filled);
        if take < 2 {
            return None;
        }
        let mut it = self.iter_ordered().skip(self.filled - take);
        let (t0, v0) = it.next()?;
        let (t1, v1) = it.last()?;
        if t1 <= t0 {
            return None;
        }
        Some((v1 - v0) / (t1 - t0) as f64)
    }

    /// Mean of the most recent `window` values.
    pub fn window_mean(&self, window: usize) -> Option<f64> {
        let take = window.min(self.filled);
        if take == 0 {
            return None;
        }
        let sum: f64 = self
            .iter_ordered()
            .skip(self.filled - take)
            .map(|(_, v)| v)
            .sum();
        Some(sum / take as f64)
    }

    /// Retained points, oldest first.
    pub fn iter_ordered(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let capacity = self.points.len();
        let start = if self.filled < capacity { 0 } else { self.next };
        (0..self.filled).map(move |i| self.points[(start + i) % capacity])
    }

    /// An owned copy of the current state (allocates; not a hot-path
    /// call).
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        TimeSeriesSnapshot {
            points: self.iter_ordered().collect(),
            pushed: self.pushed,
            ewma: self.ewma(),
        }
    }
}

/// Owned copy of a series, for exporters and dashboards.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSnapshot {
    /// Retained `(tick, value)` points, oldest first.
    pub points: Vec<(u64, f64)>,
    /// Total points ever pushed.
    pub pushed: u64,
    /// Smoothed level, if any point was pushed.
    pub ewma: Option<f64>,
}

impl TimeSeriesSnapshot {
    /// Newest point.
    pub fn latest(&self) -> Option<(u64, f64)> {
        self.points.last().copied()
    }
}

/// A named collection of series sharing one capacity and one injected
/// clock. After a series exists, [`SeriesBoard::observe`] is
/// allocation-free: a lock, a linear name scan, a ring write.
pub struct SeriesBoard {
    clock: Arc<dyn Clock>,
    capacity: usize,
    series: Mutex<Vec<(String, TimeSeries)>>,
}

impl SeriesBoard {
    /// A board over the monotonic process clock.
    pub fn new(capacity: usize) -> SeriesBoard {
        SeriesBoard::with_clock(capacity, Arc::new(MonotonicClock))
    }

    /// A board over an injected clock (tests pass a `ManualClock`).
    pub fn with_clock(capacity: usize, clock: Arc<dyn Clock>) -> SeriesBoard {
        assert!(capacity > 0, "series capacity must be positive");
        SeriesBoard {
            clock,
            capacity,
            series: Mutex::new(Vec::new()),
        }
    }

    /// Appends `(tick, value)` to `name`, creating the series on first
    /// use.
    pub fn observe(&self, name: &str, tick: u64, value: f64) {
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, s)) = series.iter_mut().find(|(n, _)| n == name) {
            s.push(tick, value);
            return;
        }
        let mut s = TimeSeries::with_capacity(self.capacity);
        s.push(tick, value);
        series.push((name.to_string(), s));
    }

    /// Appends `value` stamped with the injected clock's current
    /// microseconds as the tick.
    pub fn record(&self, name: &str, value: f64) {
        self.observe(name, self.clock.now_micros(), value);
    }

    /// Snapshot of one series.
    pub fn get(&self, name: &str) -> Option<TimeSeriesSnapshot> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.snapshot())
    }

    /// Runs `f` against one live series, avoiding a snapshot copy.
    pub fn with_series<R>(&self, name: &str, f: impl FnOnce(&TimeSeries) -> R) -> Option<R> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        series.iter().find(|(n, _)| n == name).map(|(_, s)| f(s))
    }

    /// All series, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, TimeSeriesSnapshot)> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, TimeSeriesSnapshot)> = series
            .iter()
            .map(|(n, s)| (n.clone(), s.snapshot()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn ring_keeps_the_newest_points_in_order() {
        let mut s = TimeSeries::with_capacity(4);
        for i in 0..10u64 {
            s.push(i, i as f64);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.pushed(), 10);
        assert_eq!(s.oldest(), Some((6, 6.0)));
        assert_eq!(s.latest(), Some((9, 9.0)));
        let ticks: Vec<u64> = s.iter_ordered().map(|(t, _)| t).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ewma_tracks_all_pushes_and_skips_non_finite() {
        let mut s = TimeSeries::with_ewma_alpha(2, 0.5);
        s.push(0, 4.0);
        assert_eq!(s.ewma(), Some(4.0), "first sample seeds the EWMA");
        s.push(1, 0.0);
        assert_eq!(s.ewma(), Some(2.0));
        s.push(2, f64::NAN);
        s.push(3, f64::INFINITY);
        assert_eq!(s.ewma(), Some(2.0), "non-finite values are dropped");
        assert_eq!(s.pushed(), 2);
        s.push(4, 2.0);
        assert_eq!(s.ewma(), Some(2.0));
    }

    #[test]
    fn windowed_rate_is_delta_value_over_delta_tick() {
        let mut s = TimeSeries::with_capacity(8);
        assert_eq!(s.rate(4), None);
        // Cumulative signal growing 0.5 per tick.
        for i in 0..6u64 {
            s.push(i * 2, i as f64);
        }
        let r = s.rate(3).unwrap();
        assert!((r - 0.5).abs() < 1e-12, "{r}");
        // Whole-ring window gives the same slope for a linear signal.
        assert!((s.rate(100).unwrap() - 0.5).abs() < 1e-12);
        // Duplicate tick: no rate.
        let mut flat = TimeSeries::with_capacity(4);
        flat.push(5, 1.0);
        flat.push(5, 2.0);
        assert_eq!(flat.rate(2), None);
    }

    #[test]
    fn window_mean_covers_only_the_requested_suffix() {
        let mut s = TimeSeries::with_capacity(8);
        for i in 0..5u64 {
            s.push(i, i as f64); // 0 1 2 3 4
        }
        assert_eq!(s.window_mean(2), Some(3.5));
        assert_eq!(s.window_mean(100), Some(2.0));
        assert_eq!(TimeSeries::with_capacity(2).window_mean(1), None);
    }

    #[test]
    fn snapshot_round_trips_points_and_ewma() {
        let mut s = TimeSeries::with_capacity(3);
        for i in 0..5u64 {
            s.push(i, (i * i) as f64);
        }
        let snap = s.snapshot();
        assert_eq!(snap.points, vec![(2, 4.0), (3, 9.0), (4, 16.0)]);
        assert_eq!(snap.pushed, 5);
        assert_eq!(snap.ewma, s.ewma());
        assert_eq!(snap.latest(), Some((4, 16.0)));
    }

    #[test]
    fn board_with_manual_clock_stamps_deterministic_ticks() {
        let clock = Arc::new(ManualClock::default());
        let board = SeriesBoard::with_clock(4, clock.clone());
        board.record("lat", 1.0);
        clock.advance_micros(10);
        board.record("lat", 3.0);
        let snap = board.get("lat").unwrap();
        assert_eq!(snap.points, vec![(0, 1.0), (10, 3.0)]);
        assert_eq!(board.get("missing"), None);
    }

    #[test]
    fn board_snapshot_is_sorted_by_name() {
        let board = SeriesBoard::new(4);
        board.observe("zeta", 0, 1.0);
        board.observe("alpha", 0, 2.0);
        board.observe("alpha", 1, 3.0);
        let all = board.snapshot();
        let names: Vec<&str> = all.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(all[0].1.points.len(), 2);
        assert_eq!(
            board.with_series("alpha", |s| s.latest()).unwrap(),
            Some((1, 3.0))
        );
    }
}
