//! Typed metric instruments and the global registry.
//!
//! Counters, gauges, and fixed-bucket histograms, all lock-free on the
//! record path (plain atomics; floats via compare-exchange on the bit
//! pattern). Instruments are registered once by name in a process-global
//! registry and shared as `Arc`s; hot loops should look an instrument up
//! once and keep the `Arc`.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing integer.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float value.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (atomic read-modify-write).
    pub fn add(&self, v: f64) {
        atomic_f64_update(&self.bits, |cur| cur + v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Default histogram buckets: half-decade exponential from 1 µs-ish
/// quantities up to 10⁴, suitable for both seconds and losses.
pub const DEFAULT_BUCKETS: [f64; 22] = [
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 1e1, 5e1,
    1e2, 5e2, 1e3, 5e3, 1e4, 5e4,
];

/// A bounded ring of the most recent samples, backing the sliding-window
/// quantiles. Preallocated; pushing is a slot write.
#[derive(Debug)]
struct SampleWindow {
    samples: Vec<f64>,
    next: usize,
    filled: usize,
}

impl SampleWindow {
    fn push(&mut self, v: f64) {
        let capacity = self.samples.len();
        self.samples[self.next] = v;
        self.next = (self.next + 1) % capacity;
        self.filled = (self.filled + 1).min(capacity);
    }
}

/// A fixed-bucket histogram with count/sum/min/max tracking.
///
/// Bucket `i` counts samples `v <= bounds[i]` (first matching bound); one
/// implicit overflow bucket counts samples above the last bound.
/// Cumulative stats cover the histogram's whole lifetime; a histogram
/// built via [`Histogram::with_buckets_windowed`] additionally retains
/// the most recent samples in a ring for exact *rolling* quantiles
/// ([`Histogram::window_quantile`]) — the SLO tracker's view of "lately".
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    window: Option<Mutex<SampleWindow>>,
}

impl Histogram {
    /// A histogram over strictly increasing `bounds`.
    pub fn with_buckets(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            window: None,
        }
    }

    /// A histogram with [`DEFAULT_BUCKETS`].
    pub fn with_default_buckets() -> Self {
        Histogram::with_buckets(&DEFAULT_BUCKETS)
    }

    /// A histogram that also keeps the most recent `window` samples for
    /// exact sliding-window quantiles. The ring is preallocated here;
    /// recording stays allocation-free (one short uncontended lock).
    pub fn with_buckets_windowed(bounds: &[f64], window: usize) -> Self {
        assert!(window > 0, "window capacity must be positive");
        let mut h = Histogram::with_buckets(bounds);
        h.window = Some(Mutex::new(SampleWindow {
            samples: vec![0.0; window],
            next: 0,
            filled: 0,
        }));
        h
    }

    /// Records one sample.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |cur| cur + v);
        atomic_f64_update(&self.min_bits, |cur| cur.min(v));
        atomic_f64_update(&self.max_bits, |cur| cur.max(v));
        if let Some(window) = &self.window {
            window.lock().unwrap_or_else(|e| e.into_inner()).push(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded samples (0.0 when empty, matching
    /// [`Histogram::summarize`]'s zeroed-summary convention).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum() / count as f64
    }

    /// Estimate of the `q`-quantile from the bucket counts: linearly
    /// interpolated within the bucket holding the `⌈q · count⌉`-th
    /// sample, with the bucket's range tightened to (and the result
    /// clamped to) the tracked exact min/max. NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let count = self.count();
        if count == 0 {
            return f64::NAN;
        }
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket i spans (bounds[i-1], bounds[i]]; every sample in
                // it also lies in [min, max], so intersect the two ranges
                // before interpolating on the rank within the bucket.
                let lo = if i == 0 {
                    self.min()
                } else {
                    self.bounds[i - 1].max(self.min())
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i].min(self.max())
                } else {
                    self.max()
                };
                let frac = (rank - seen) as f64 / n as f64;
                // frac == 1 must hit hi exactly (lo + (hi-lo)·1 can round
                // past it), so quantile(1.0) equals the observed max.
                let v = if frac >= 1.0 {
                    hi
                } else {
                    lo + (hi - lo) * frac
                };
                return v.clamp(self.min(), self.max());
            }
            seen += n;
        }
        self.max()
    }

    /// Exact `q`-quantile over the sliding window of recent samples
    /// (nearest-rank, matching [`Histogram::quantile`]'s `⌈q · n⌉`
    /// convention). NaN when no window was configured
    /// ([`Histogram::with_buckets_windowed`]) or no sample has been
    /// recorded yet. Samples older than the window capacity have been
    /// evicted and no longer influence the result.
    pub fn window_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let Some(window) = &self.window else {
            return f64::NAN;
        };
        let window = window.lock().unwrap_or_else(|e| e.into_inner());
        if window.filled == 0 {
            return f64::NAN;
        }
        let mut sorted: Vec<f64> = window.samples[..window.filled].to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    /// Samples currently retained in the sliding window (0 without one).
    pub fn window_len(&self) -> usize {
        self.window
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()).filled)
            .unwrap_or(0)
    }

    /// Capacity of the sliding window, if one was configured.
    pub fn window_capacity(&self) -> Option<usize> {
        self.window
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()).samples.len())
    }

    /// Smallest recorded sample (infinity when empty).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Largest recorded sample (-infinity when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Point-in-time summary.
    pub fn summarize(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum(),
            min: if count == 0 { 0.0 } else { self.min() },
            max: if count == 0 { 0.0 } else { self.max() },
            p50: if count == 0 { 0.0 } else { self.quantile(0.5) },
            p90: if count == 0 { 0.0 } else { self.quantile(0.9) },
            p99: if count == 0 { 0.0 } else { self.quantile(0.99) },
        }
    }
}

/// Serializable snapshot of one histogram.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Median estimate (interpolated within the bucket).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// Point-in-time snapshot of every registered instrument.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// True if no instrument recorded anything.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// The thread-safe instrument registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created with [`DEFAULT_BUCKETS`] on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &DEFAULT_BUCKETS)
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (an existing histogram keeps its original buckets).
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::with_buckets(bounds)))
            .clone()
    }

    /// Snapshot of all instruments. Untouched instruments (zero counters,
    /// empty histograms) are included so dashboards see them exist.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.summarize()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Drops every instrument (used by tests and between bench runs).
    pub fn clear(&self) {
        self.counters
            .lock()
            .expect("counter registry poisoned")
            .clear();
        self.gauges.lock().expect("gauge registry poisoned").clear();
        self.histograms
            .lock()
            .expect("histogram registry poisoned")
            .clear();
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry.
pub fn global_registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("a");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a").get(), 5);
        let g = r.gauge("g");
        g.set(2.5);
        g.add(-1.0);
        assert!((r.gauge("g").get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_counter_increments_do_not_lose_updates() {
        let r = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    let c = r.counter("shared");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_histogram_records_are_all_counted() {
        let h = Arc::new(Histogram::with_buckets(&[1.0, 2.0, 4.0]));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..5_000 {
                        h.record((t * 5_000 + i) as f64 / 10_000.0);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 20_000);
        let total: f64 = (0..20_000).map(|i| i as f64 / 10_000.0).sum();
        assert!((h.sum() - total).abs() < 1e-6, "{} vs {total}", h.sum());
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::with_buckets(&[1.0, 2.0, 4.0]);
        // On the boundary → that bucket; just above → next bucket.
        h.record(1.0); // bucket 0 (<= 1)
        h.record(1.000001); // bucket 1
        h.record(2.0); // bucket 1
        h.record(4.0); // bucket 2
        h.record(100.0); // overflow
        let counts: Vec<u64> = h
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        assert_eq!(counts, vec![1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn quantiles_interpolate_and_clamp_to_observed_range() {
        let h = Histogram::with_buckets(&[1.0, 10.0, 100.0]);
        for _ in 0..90 {
            h.record(0.5); // bucket 0
        }
        for _ in 0..10 {
            h.record(50.0); // bucket 2
        }
        // Bucket 0 tightens to [min, bounds[0]] = [0.5, 1.0]; ranks
        // interpolate within it instead of reporting the upper bound.
        assert!((h.quantile(0.5) - (0.5 + 0.5 * (50.0 / 90.0))).abs() < 1e-12);
        assert!((h.quantile(0.89) - (0.5 + 0.5 * (89.0 / 90.0))).abs() < 1e-12);
        // Bucket 2 tightens to [bounds[1], max] = [10, 50] (not 100).
        assert_eq!(h.quantile(0.95), 30.0);
        assert_eq!(h.quantile(1.0), 50.0);
        // NaN samples are ignored, not counted.
        h.record(f64::NAN);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn overflow_quantile_reports_observed_max() {
        let h = Histogram::with_buckets(&[1.0]);
        h.record(7.0);
        h.record(9.0);
        assert_eq!(h.quantile(1.0), 9.0);
        let s = h.summarize();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p99, 9.0);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let h = Histogram::with_default_buckets();
        let s = h.summarize();
        assert_eq!(s, HistogramSummary::default());
        assert!(h.quantile(0.5).is_nan());
        assert_eq!(h.mean(), 0.0, "empty mean must be 0, not 0/0");
    }

    #[test]
    fn concurrent_gauge_and_counter_adds_do_not_lose_updates() {
        let r = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 5_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    let g = r.gauge("stress_gauge");
                    let c = r.counter("stress_counter");
                    for i in 0..per_thread {
                        // Mix signs and magnitudes so torn CAS updates
                        // would show up as a wrong final sum.
                        let v = ((t * per_thread + i) % 7) as f64 - 3.0;
                        g.add(v);
                        c.add(2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected: f64 = (0..threads * per_thread)
            .map(|k| ((k % 7) as f64) - 3.0)
            .sum();
        assert!((r.gauge("stress_gauge").get() - expected).abs() < 1e-9);
        assert_eq!(
            r.counter("stress_counter").get(),
            (threads * per_thread) as u64 * 2
        );
    }

    #[test]
    fn quantile_is_monotone_in_q_and_bounded_by_min_max() {
        // Property test over a deterministic LCG sample stream.
        let h = Histogram::with_default_buckets();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 // uniform in [0, 1)
        };
        for _ in 0..2_000 {
            // Log-uniform-ish spread across several bucket decades.
            let v = 10f64.powf(lcg() * 6.0 - 3.0);
            h.record(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let v = h.quantile(q);
            assert!(
                v >= h.min() - 1e-12,
                "quantile({q}) = {v} below min {}",
                h.min()
            );
            assert!(
                v <= h.max() + 1e-12,
                "quantile({q}) = {v} above max {}",
                h.max()
            );
            assert!(
                v >= prev - 1e-12,
                "quantile not monotone at q={q}: {v} < {prev}"
            );
            prev = v;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn snapshot_collects_everything_and_clear_resets() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.gauge("g").set(1.25);
        r.histogram("h").record(0.5);
        let s = r.snapshot();
        assert_eq!(s.counters.get("c"), Some(&3));
        assert_eq!(s.gauges.get("g"), Some(&1.25));
        assert_eq!(s.histograms.get("h").unwrap().count, 1);
        assert!(!s.is_empty());
        r.clear();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_buckets() {
        Histogram::with_buckets(&[1.0, 1.0]);
    }

    #[test]
    fn window_quantile_is_exact_and_expires_old_samples() {
        let h = Histogram::with_buckets_windowed(&DEFAULT_BUCKETS, 4);
        assert!(h.window_quantile(0.99).is_nan(), "empty window");
        assert_eq!(h.window_capacity(), Some(4));

        // Fill with slow samples…
        for _ in 0..4 {
            h.record(100.0);
        }
        assert_eq!(h.window_len(), 4);
        assert_eq!(h.window_quantile(0.99), 100.0);

        // …then four fast ones: the slow era must be fully evicted.
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.window_len(), 4, "window stays bounded");
        assert_eq!(h.window_quantile(0.99), 4.0, "old samples expired");
        assert_eq!(h.window_quantile(0.5), 2.0, "nearest rank: ⌈0.5·4⌉ = 2nd");
        assert_eq!(h.window_quantile(0.0), 1.0);
        assert_eq!(h.window_quantile(1.0), 4.0);
        // Cumulative stats still cover the whole lifetime.
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn window_quantile_is_monotone_in_q() {
        let h = Histogram::with_buckets_windowed(&DEFAULT_BUCKETS, 64);
        // Deterministic LCG stream, including values beyond the window.
        let mut x = 0x2545f491_4f6cdd1du64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record((x >> 40) as f64 / 100.0);
        }
        assert_eq!(h.window_len(), 64);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.window_quantile(q);
            assert!(v >= prev, "window quantile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn unwindowed_histogram_reports_no_window() {
        let h = Histogram::with_default_buckets();
        h.record(1.0);
        assert_eq!(h.window_len(), 0);
        assert_eq!(h.window_capacity(), None);
        assert!(h.window_quantile(0.5).is_nan());
    }
}
