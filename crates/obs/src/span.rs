//! Scoped timers ("spans") with nesting and injectable clocks.
//!
//! `let _span = obs::span!("training");` times the enclosing scope with
//! the process monotonic clock. On drop the span records its duration
//! into the `span.<name>` histogram and, if a sink is listening at
//! `Debug`, emits a `span` event carrying the duration, nesting depth,
//! and dotted path of enclosing span names.

use std::cell::RefCell;

use crate::clock::{Clock, MonotonicClock};
use crate::event::{Event, FieldValue};
use crate::level::Level;
use crate::metrics::global_registry;
use crate::profile;
use crate::sink::{emit, enabled};

thread_local! {
    /// Names of the currently open spans on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A running span; finishes (and reports) when dropped or on
/// [`SpanGuard::finish`].
pub struct SpanGuard<'c> {
    name: &'static str,
    clock: &'c dyn Clock,
    start_micros: u64,
    /// Depth of this span (0 = outermost), captured at entry.
    depth: usize,
    /// Whether this span also opened a profiler scope (profiling was
    /// enabled at entry); the matching exit must balance the stack.
    prof_entered: bool,
    /// Whether this span pushed a child trace context (a trace was
    /// active at entry); the close must pop it after emitting.
    trace_entered: bool,
    finished: bool,
}

impl<'c> SpanGuard<'c> {
    /// Opens a span timed by the process monotonic clock.
    pub fn enter(name: &'static str) -> SpanGuard<'static> {
        static CLOCK: MonotonicClock = MonotonicClock;
        SpanGuard::enter_with_clock(name, &CLOCK)
    }

    /// Opens a span timed by an explicit clock (tests inject a
    /// [`crate::ManualClock`] here).
    pub fn enter_with_clock(name: &'static str, clock: &'c dyn Clock) -> SpanGuard<'c> {
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.len() - 1
        });
        let prof_entered = profile::scope_enter(name);
        let trace_entered = crate::trace::push_span_child();
        SpanGuard {
            name,
            clock,
            start_micros: clock.now_micros(),
            depth,
            prof_entered,
            trace_entered,
            finished: false,
        }
    }

    /// This span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nesting depth (0 = outermost).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seconds elapsed so far.
    pub fn elapsed_secs(&self) -> f64 {
        (self.clock.now_micros().saturating_sub(self.start_micros)) as f64 / 1e6
    }

    /// Ends the span now and returns its duration in seconds.
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        debug_assert!(!self.finished, "span closed twice");
        self.finished = true;
        let elapsed_micros = self.clock.now_micros().saturating_sub(self.start_micros);
        if self.prof_entered {
            profile::scope_exit(elapsed_micros, Default::default());
        }
        let secs = elapsed_micros as f64 / 1e6;
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join(".");
            stack.pop();
            path
        });
        global_registry()
            .histogram(&format!("span.{}", self.name))
            .record(secs);
        // The span's own trace context is still active here, so the
        // close event carries this span's id with its parent linked.
        if enabled(Level::Debug) || crate::recorder::recorder_wants(Level::Debug) {
            emit(Event::new(
                Level::Debug,
                "span",
                self.name,
                vec![
                    ("secs", FieldValue::F64(secs)),
                    ("depth", FieldValue::U64(self.depth as u64)),
                    ("path", FieldValue::Str(path)),
                ],
            ));
        }
        // With span export armed and a trace active, ship the closed
        // span (still top-of-stack, so its own ids are current) to the
        // per-process sink for cross-process assembly.
        if self.trace_entered && crate::spanexport::span_export_armed() {
            if let Some(ctx) = crate::trace::current_trace() {
                crate::spanexport::export_span(crate::spanexport::SpanRecord {
                    process: String::new(),
                    name: self.name.to_string(),
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                    parent_span_id: ctx.parent_span_id,
                    start_us: self.start_micros,
                    dur_us: elapsed_micros,
                    annotations: Vec::new(),
                });
            }
        }
        if self.trace_entered {
            crate::trace::pop_span_child();
        }
        secs
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.close();
        }
    }
}

/// Opens a [`SpanGuard`] named by a string literal; bind it to keep the
/// span open: `let _span = obs::span!("training");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::sink::{global_sink_lock, install_sink, take_sinks, MemorySink};
    use std::sync::Arc;

    #[test]
    fn injected_clock_times_exactly() {
        let clock = ManualClock::new();
        let span = SpanGuard::enter_with_clock("unit_test_exact", &clock);
        clock.advance_secs(1.5);
        assert!((span.elapsed_secs() - 1.5).abs() < 1e-9);
        clock.advance_secs(0.25);
        let secs = span.finish();
        assert!((secs - 1.75).abs() < 1e-9, "{secs}");
        let summary = global_registry()
            .histogram("span.unit_test_exact")
            .summarize();
        assert_eq!(summary.count, 1);
        assert!((summary.sum - 1.75).abs() < 1e-9);
    }

    #[test]
    fn nested_spans_report_depth_path_and_exclusive_times() {
        let _guard = global_sink_lock();
        take_sinks();
        let sink = Arc::new(MemorySink::new(Level::Debug));
        install_sink(sink.clone());

        let clock = ManualClock::new();
        {
            let _outer = SpanGuard::enter_with_clock("outer_nesting_test", &clock);
            clock.advance_secs(1.0);
            {
                let _inner = SpanGuard::enter_with_clock("inner_nesting_test", &clock);
                clock.advance_secs(2.0);
            }
            clock.advance_secs(0.5);
        }
        take_sinks();

        let events: Vec<Event> = sink
            .events()
            .into_iter()
            .filter(|e| e.target == "span" && e.message.ends_with("_nesting_test"))
            .collect();
        assert_eq!(events.len(), 2, "inner closes first, then outer");
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.message, "inner_nesting_test");
        assert_eq!(outer.message, "outer_nesting_test");
        assert_eq!(inner.field("depth"), Some(&FieldValue::U64(1)));
        assert_eq!(outer.field("depth"), Some(&FieldValue::U64(0)));
        assert_eq!(
            inner.field("path"),
            Some(&FieldValue::Str(
                "outer_nesting_test.inner_nesting_test".into()
            ))
        );
        let secs_of = |e: &Event| match e.field("secs") {
            Some(FieldValue::F64(s)) => *s,
            other => panic!("missing secs: {other:?}"),
        };
        assert!((secs_of(inner) - 2.0).abs() < 1e-9);
        assert!(
            (secs_of(outer) - 3.5).abs() < 1e-9,
            "outer covers inner + own time"
        );
    }

    #[test]
    fn span_events_carry_a_child_trace_context() {
        let _guard = global_sink_lock();
        take_sinks();
        let sink = Arc::new(MemorySink::new(Level::Debug));
        install_sink(sink.clone());

        let root = crate::trace::TraceContext::from_seed(21);
        let clock = ManualClock::new();
        {
            let _t = root.enter();
            let _span = SpanGuard::enter_with_clock("traced_span_test", &clock);
            clock.advance_secs(0.5);
        }
        take_sinks();

        let event = sink
            .events()
            .into_iter()
            .find(|e| e.target == "span" && e.message == "traced_span_test")
            .expect("span close event");
        let ctx = event.trace.expect("span event is stamped");
        assert_eq!(ctx.trace_id, root.trace_id);
        assert_ne!(ctx.span_id, root.span_id, "span gets its own id");
        assert_eq!(ctx.parent_span_id, Some(root.span_id));
        assert_eq!(
            crate::trace::current_trace(),
            None,
            "span popped its context"
        );
    }

    #[test]
    fn span_stack_unwinds_even_without_sinks() {
        let clock = ManualClock::new();
        for _ in 0..3 {
            let _span = SpanGuard::enter_with_clock("unwind_test", &clock);
        }
        let depth = SPAN_STACK.with(|s| s.borrow().len());
        assert_eq!(depth, 0);
    }
}
