//! Event sinks and the global dispatch path.
//!
//! Sinks are installed process-wide; the emit fast path is a single
//! relaxed atomic load when nothing is installed, so instrumented code
//! pays nothing in the default (telemetry-off) configuration.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::event::Event;
use crate::level::Level;

/// A destination for structured events.
pub trait EventSink: Send + Sync {
    /// The most verbose level this sink wants; events above it are not
    /// delivered.
    fn max_level(&self) -> Level;

    /// Consumes one event (already level-filtered by the dispatcher).
    fn record(&self, event: &Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

static SINKS: RwLock<Vec<Arc<dyn EventSink>>> = RwLock::new(Vec::new());
/// `0` = disabled; otherwise `1 + max(sink.max_level())`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// True if an event at `level` would reach at least one sink. The check
/// instrumented code performs before building an event.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) < MAX_LEVEL.load(Ordering::Relaxed)
}

/// Installs a sink. Sinks stack: every installed sink sees every event at
/// or below its own `max_level`.
pub fn install_sink(sink: Arc<dyn EventSink>) {
    let mut sinks = SINKS.write().expect("sink registry poisoned");
    sinks.push(sink);
    let max = sinks
        .iter()
        .map(|s| s.max_level() as u8 + 1)
        .max()
        .unwrap_or(0);
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Removes every sink (flushing them) and returns the previous set.
pub fn take_sinks() -> Vec<Arc<dyn EventSink>> {
    let mut sinks = SINKS.write().expect("sink registry poisoned");
    MAX_LEVEL.store(0, Ordering::Relaxed);
    let old = std::mem::take(&mut *sinks);
    for s in &old {
        s.flush();
    }
    old
}

/// Flushes every installed sink.
pub fn flush_sinks() {
    for s in SINKS.read().expect("sink registry poisoned").iter() {
        s.flush();
    }
}

/// Dispatches `event` to every interested sink, after the flight
/// recorder (which captures independently of sink levels) sees it.
pub fn emit(event: Event) {
    crate::recorder::record_event(&event);
    for sink in SINKS.read().expect("sink registry poisoned").iter() {
        if event.level <= sink.max_level() {
            sink.record(&event);
        }
    }
}

/// Prints a user-facing line to stdout and mirrors it to the sinks as an
/// `Info` event with target `"console"`. This is what the CLI's former
/// bare `println!` calls route through: stdout bytes are unchanged, but
/// telemetry sinks now see the output too. The stderr sink deliberately
/// skips `console` events so nothing is printed twice.
pub fn console(line: impl AsRef<str>) {
    let line = line.as_ref();
    println!("{line}");
    if enabled(Level::Info) {
        emit(Event::new(Level::Info, "console", line, Vec::new()));
    }
}

/// [`console`] for error paths: prints to stderr and mirrors the line as
/// an `Error` event.
pub fn console_err(line: impl AsRef<str>) {
    let line = line.as_ref();
    eprintln!("{line}");
    if enabled(Level::Error) {
        emit(Event::new(Level::Error, "console", line, Vec::new()));
    }
}

/// Human-readable sink writing level-filtered lines to stderr.
///
/// Skips `console`-target events (they already went to stdout/stderr).
#[derive(Debug)]
pub struct StderrSink {
    max_level: Level,
}

impl StderrSink {
    /// A stderr sink at the given verbosity.
    pub fn new(max_level: Level) -> Self {
        StderrSink { max_level }
    }

    /// A stderr sink configured from `PRIVIM_LOG`; `None` if the variable
    /// is unset, `off`, or unparsable.
    pub fn from_env() -> Option<Self> {
        Level::from_env().map(StderrSink::new)
    }
}

impl EventSink for StderrSink {
    fn max_level(&self) -> Level {
        self.max_level
    }

    fn record(&self, event: &Event) {
        if event.target == "console" {
            return;
        }
        eprintln!("{}", event.format_human());
    }
}

/// Machine-readable sink appending one JSON object per event to a file.
pub struct JsonlSink {
    max_level: Level,
    file: Mutex<File>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and records everything up to `Debug`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Self::create_with_level(path, Level::Debug)
    }

    /// Creates (truncating) `path` with an explicit verbosity.
    pub fn create_with_level<P: AsRef<Path>>(path: P, max_level: Level) -> std::io::Result<Self> {
        Ok(JsonlSink {
            max_level,
            file: Mutex::new(File::create(path)?),
        })
    }
}

impl EventSink for JsonlSink {
    fn max_level(&self) -> Level {
        self.max_level
    }

    fn record(&self, event: &Event) {
        // Fault site for chaos tests: an injected telemetry-write error
        // behaves exactly like a real one — counted, never fatal.
        if crate::fault::fault_point("telemetry.write").is_err() {
            crate::counter("telemetry.write_errors").add(1);
            return;
        }
        let line = event.to_json_line();
        let mut file = self.file.lock().expect("jsonl sink poisoned");
        // A failed telemetry write must never take down the run.
        if writeln!(file, "{line}").is_err() {
            crate::counter("telemetry.write_errors").add(1);
        }
    }

    fn flush(&self) {
        let _ = self.file.lock().expect("jsonl sink poisoned").flush();
    }
}

/// In-memory sink for tests.
#[derive(Debug)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    max_level: Level,
}

impl MemorySink {
    /// A memory sink capturing everything up to `max_level`.
    pub fn new(max_level: Level) -> Self {
        MemorySink {
            events: Mutex::new(Vec::new()),
            max_level,
        }
    }

    /// A copy of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }
}

impl EventSink for MemorySink {
    fn max_level(&self) -> Level {
        self.max_level
    }

    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
pub(crate) fn global_sink_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    #[test]
    fn disabled_by_default_within_this_lock() {
        let _guard = global_sink_lock();
        take_sinks();
        assert!(!enabled(Level::Error));
        assert!(!enabled(Level::Trace));
    }

    #[test]
    fn installed_sink_receives_filtered_events() {
        let _guard = global_sink_lock();
        take_sinks();
        let sink = Arc::new(MemorySink::new(Level::Info));
        install_sink(sink.clone());
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        emit(Event::new(
            Level::Info,
            "t",
            "visible",
            vec![("k", FieldValue::U64(1))],
        ));
        emit(Event::new(Level::Debug, "t", "hidden", Vec::new()));
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "visible");
        take_sinks();
        assert!(!enabled(Level::Error));
    }

    #[test]
    fn max_level_is_union_over_sinks() {
        let _guard = global_sink_lock();
        take_sinks();
        let quiet = Arc::new(MemorySink::new(Level::Error));
        let chatty = Arc::new(MemorySink::new(Level::Trace));
        install_sink(quiet.clone());
        install_sink(chatty.clone());
        assert!(enabled(Level::Trace));
        emit(Event::new(Level::Debug, "t", "m", Vec::new()));
        assert_eq!(
            quiet.events().len(),
            0,
            "error-only sink must not see debug"
        );
        assert_eq!(chatty.events().len(), 1);
        take_sinks();
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("privim-obs-jsonl-sink-test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event::new(
            Level::Info,
            "t",
            "one",
            vec![("x", FieldValue::F64(0.5))],
        ));
        sink.record(&Event::new(Level::Debug, "t", "two", Vec::new()));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::parse(line).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
