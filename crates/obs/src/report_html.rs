//! Self-contained HTML run-report renderer.
//!
//! Produces a single HTML file (inline CSS, no external assets, no
//! scripts) summarizing one run: phase timings and the ε trace from
//! [`RunTelemetry`], the privacy-budget ledger, every metric in a
//! [`MetricsSnapshot`], and the profiler call tree with its folded-stack
//! flamegraph text. The file is meant to be archived next to the run's
//! JSON results and opened directly in a browser.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::profile::ProfileReport;
use crate::telemetry::RunTelemetry;

/// Escapes `&`, `<`, `>`, and `"` for safe embedding in HTML text and
/// attribute positions.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return v.to_string();
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1e6 || a < 1e-4 {
        format!("{v:.3e}")
    } else {
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

fn table(out: &mut String, caption: &str, headers: &[&str], rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let _ = write!(out, "<h2>{}</h2><table><thead><tr>", escape(caption));
    for h in headers {
        let _ = write!(out, "<th>{}</th>", escape(h));
    }
    out.push_str("</tr></thead><tbody>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            let _ = write!(out, "<td>{}</td>", escape(cell));
        }
        out.push_str("</tr>");
    }
    out.push_str("</tbody></table>\n");
}

const STYLE: &str = "body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:70rem;\
padding:0 1rem;color:#1a1a2e}h1{border-bottom:2px solid #4a4e69}h2{margin-top:2rem;\
color:#22223b}table{border-collapse:collapse;width:100%;margin:.5rem 0}\
th,td{border:1px solid #c9cbd8;padding:.3rem .6rem;text-align:right;\
font-variant-numeric:tabular-nums}th:first-child,td:first-child{text-align:left}\
th{background:#f2f3f8}tr:nth-child(even){background:#fafafc}\
pre{background:#f2f3f8;padding:.8rem;overflow-x:auto;border-radius:4px}\
.meta{color:#4a4e69}";

/// Renders a self-contained HTML report. Sections with no data are
/// omitted, so the renderer works for partial inputs (e.g. metrics only).
pub fn render_html_report(
    title: &str,
    telemetry: Option<&RunTelemetry>,
    snapshot: &MetricsSnapshot,
    profile: &ProfileReport,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>{title}</title><style>{STYLE}</style></head><body><h1>{title}</h1>\n",
        title = escape(title),
    );

    // Watchdog rule states (armed processes only) lead the report: an
    // active alert is the first thing an operator should see.
    let alert_rows: Vec<Vec<String>> = crate::watch::alert_states()
        .iter()
        .map(|a| {
            vec![
                a.rule.clone(),
                a.metric.clone(),
                if a.active { "ACTIVE" } else { "ok" }.to_string(),
                if a.value.is_nan() {
                    "–".to_string()
                } else {
                    fmt_num(a.value)
                },
                if a.active {
                    a.since_tick.to_string()
                } else {
                    "–".to_string()
                },
                a.detail.clone(),
            ]
        })
        .collect();
    table(
        &mut out,
        "Alerts",
        &["rule", "metric", "state", "value", "since tick", "detail"],
        &alert_rows,
    );

    if let Some(t) = telemetry {
        let mut meta = Vec::new();
        if let Some(seed) = t.seed {
            meta.push(format!("seed {seed}"));
        }
        if let Some(eps) = t.final_epsilon() {
            meta.push(format!("final ε = {}", fmt_num(eps)));
        }
        meta.push(format!("{} events", t.events_total));
        if let Some(trace_id) = &t.trace_id {
            meta.push(format!("trace {trace_id}"));
        }
        let _ = write!(out, "<p class=\"meta\">{}</p>\n", escape(&meta.join(" · ")));

        let phase_rows: Vec<Vec<String>> = t
            .phases
            .iter()
            .map(|p| vec![p.name.clone(), fmt_num(p.secs), p.count.to_string()])
            .collect();
        table(
            &mut out,
            "Phases",
            &["phase", "total secs", "count"],
            &phase_rows,
        );

        let epoch_rows: Vec<Vec<String>> = t
            .epochs
            .iter()
            .map(|e| {
                let opt = |v: Option<f64>| v.map_or(String::from("–"), fmt_num);
                vec![
                    e.epoch.to_string(),
                    fmt_num(e.loss),
                    opt(e.clip_fraction),
                    opt(e.grad_norm_pre),
                    opt(e.grad_norm_post),
                    opt(e.noise_std),
                    opt(e.epsilon_spent),
                ]
            })
            .collect();
        table(
            &mut out,
            "Training epochs",
            &[
                "epoch",
                "loss",
                "clip frac",
                "‖g‖ pre",
                "‖g‖ post",
                "noise σΔ",
                "ε spent",
            ],
            &epoch_rows,
        );

        let ledger_rows: Vec<Vec<String>> = t
            .ledger
            .iter()
            .map(|l| {
                vec![
                    l.step.to_string(),
                    l.mechanism.clone(),
                    fmt_num(l.sigma),
                    fmt_num(l.sensitivity),
                    fmt_num(l.sampling_rate),
                    format!(
                        "{}/{}/{}",
                        l.max_occurrences, l.batch_size, l.container_size
                    ),
                    fmt_num(l.delta),
                    fmt_num(l.epsilon_after),
                    fmt_num(l.alpha),
                ]
            })
            .collect();
        table(
            &mut out,
            "Privacy-budget ledger",
            &[
                "step",
                "mechanism",
                "σ",
                "Δ_g",
                "q",
                "N_g/B/m",
                "δ",
                "ε after",
                "α*",
            ],
            &ledger_rows,
        );
    }

    let counter_rows: Vec<Vec<String>> = snapshot
        .counters
        .iter()
        .map(|(k, v)| vec![k.clone(), v.to_string()])
        .collect();
    table(&mut out, "Counters", &["name", "value"], &counter_rows);

    let gauge_rows: Vec<Vec<String>> = snapshot
        .gauges
        .iter()
        .map(|(k, v)| vec![k.clone(), fmt_num(*v)])
        .collect();
    table(&mut out, "Gauges", &["name", "value"], &gauge_rows);

    // Per-hop latency decomposition (router.hop.* histograms, recorded
    // by the serving router): the same breakdown `privim trace-view`
    // derives per request, here in aggregate across the run.
    let hop_rows: Vec<Vec<String>> = snapshot
        .histograms
        .iter()
        .filter_map(|(k, h)| {
            let hop = k.strip_prefix("router.hop.")?;
            Some(vec![
                hop.to_string(),
                h.count.to_string(),
                fmt_num(h.p50 * 1e3),
                fmt_num(h.p90 * 1e3),
                fmt_num(h.p99 * 1e3),
                fmt_num(h.sum),
            ])
        })
        .collect();
    table(
        &mut out,
        "Tier hop latencies",
        &["hop", "count", "p50 ms", "p90 ms", "p99 ms", "total secs"],
        &hop_rows,
    );

    let hist_rows: Vec<Vec<String>> = snapshot
        .histograms
        .iter()
        .map(|(k, h)| {
            vec![
                k.clone(),
                h.count.to_string(),
                fmt_num(h.sum),
                fmt_num(h.min),
                fmt_num(h.p50),
                fmt_num(h.p90),
                fmt_num(h.p99),
                fmt_num(h.max),
            ]
        })
        .collect();
    table(
        &mut out,
        "Histograms",
        &["name", "count", "sum", "min", "p50", "p90", "p99", "max"],
        &hist_rows,
    );

    if !profile.is_empty() {
        let work = |v: Option<f64>| v.map(fmt_num).unwrap_or_else(|| "-".into());
        let prof_rows: Vec<Vec<String>> = profile
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}{}", "\u{2003}".repeat(r.depth), r.name),
                    fmt_num(r.total_secs()),
                    fmt_num(r.self_secs()),
                    r.calls.to_string(),
                    work(r.gflops_per_sec()),
                    work(r.gbytes_per_sec()),
                    work(r.arithmetic_intensity()),
                ]
            })
            .collect();
        table(
            &mut out,
            "Profile (call tree)",
            &[
                "scope",
                "total secs",
                "self secs",
                "calls",
                "gflop/s",
                "gb/s",
                "flop/byte",
            ],
            &prof_rows,
        );
        let _ = write!(
            out,
            "<h2>Flamegraph (folded stacks)</h2><pre>{}</pre>\n",
            escape(&profile.render_flamegraph()),
        );
    }

    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::profile::ProfileRow;
    use crate::telemetry::{LedgerRecord, PhaseTiming};

    #[test]
    fn report_embeds_every_section_and_escapes_html() {
        let r = Registry::new();
        r.counter("train.iterations").add(3);
        r.gauge("dp.sigma").set(2.5);
        r.histogram("span.training").record(1.0);
        let telemetry = RunTelemetry {
            seed: Some(42),
            phases: vec![PhaseTiming {
                name: "training".into(),
                secs: 1.25,
                count: 1,
            }],
            epsilon_trace: vec![0.5, 1.0],
            ledger: vec![LedgerRecord {
                step: 1,
                mechanism: "subsampled_gaussian".into(),
                sigma: 3.0,
                epsilon_after: 0.5,
                ..LedgerRecord::default()
            }],
            trace_id: Some("00c0ffee00c0ffee00c0ffee00c0ffee".into()),
            ..RunTelemetry::default()
        };
        let profile = ProfileReport {
            rows: vec![ProfileRow {
                name: "nn.<matmul>".into(),
                path: "training;nn.<matmul>".into(),
                depth: 1,
                calls: 4,
                total_micros: 1_000,
                self_micros: 1_000,
                flops: 8_000_000,
                bytes: 2_000_000,
                items: 4,
            }],
        };
        let html = render_html_report("run <1>", Some(&telemetry), &r.snapshot(), &profile);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(
            html.contains("<title>run &lt;1&gt;</title>"),
            "title escaped"
        );
        assert!(html.contains("seed 42"), "{html}");
        assert!(html.contains("final ε = 1"), "{html}");
        assert!(
            html.contains("trace 00c0ffee00c0ffee00c0ffee00c0ffee"),
            "{html}"
        );
        assert!(html.contains("Privacy-budget ledger"));
        assert!(html.contains("subsampled_gaussian"));
        assert!(html.contains("train.iterations"));
        assert!(html.contains("span.training"));
        assert!(
            html.contains("nn.&lt;matmul&gt;"),
            "profile names escaped: {html}"
        );
        assert!(
            html.contains("training;nn.&lt;matmul&gt; 1000"),
            "folded stack line"
        );
        assert!(html.contains("gflop/s"), "work columns present: {html}");
        // 8e6 flops over 1000 µs = 8 GFLOP/s; 8e6/2e6 = 4 flop/byte.
        assert!(html.contains("<td>8</td>"), "derived gflop/s: {html}");
        assert!(html.contains("<td>4</td>"), "arithmetic intensity: {html}");
        assert!(html.trim_end().ends_with("</body></html>"));
    }

    #[test]
    fn empty_inputs_render_a_minimal_page() {
        // The watchdog is process-global; serialize with the tests that
        // arm it so "no data" really means no data.
        let _guard = crate::sink::global_sink_lock();
        let html = render_html_report(
            "empty",
            None,
            &MetricsSnapshot::default(),
            &ProfileReport::default(),
        );
        assert!(html.contains("<h1>empty</h1>"));
        assert!(!html.contains("<table>"), "no sections for no data");
    }

    #[test]
    fn armed_watchdog_adds_an_alerts_section() {
        let _guard = crate::sink::global_sink_lock();
        crate::watch::arm(vec![crate::watch::AlertRule::new(
            "eps_budget",
            "dp.epsilon",
            crate::watch::RuleKind::BurnRate {
                budget: 4.0,
                warn_fraction: 0.5,
            },
        )]);
        crate::watch::observe("dp.epsilon", 3, 3.5);
        let html = render_html_report(
            "alerting",
            None,
            &MetricsSnapshot::default(),
            &ProfileReport::default(),
        );
        crate::watch::disarm();
        assert!(html.contains("<h2>Alerts</h2>"), "{html}");
        assert!(html.contains("<td>eps_budget</td>"), "{html}");
        assert!(html.contains("<td>ACTIVE</td>"), "{html}");
        assert!(html.contains("budget 4"), "breach detail rendered: {html}");
        let after = render_html_report(
            "quiet",
            None,
            &MetricsSnapshot::default(),
            &ProfileReport::default(),
        );
        assert!(!after.contains("Alerts"), "no section once disarmed");
    }

    #[test]
    fn router_hop_histograms_render_a_dedicated_table() {
        let r = Registry::new();
        r.histogram("router.hop.queue_wait").record(0.004);
        r.histogram("span.training").record(1.0);
        let html = render_html_report("hops", None, &r.snapshot(), &ProfileReport::default());
        assert!(html.contains("<h2>Tier hop latencies</h2>"), "{html}");
        assert!(html.contains("<td>queue_wait</td>"), "{html}");
        assert!(html.contains("<td>0.004</td>"), "total secs column: {html}");
        let quiet = render_html_report(
            "no hops",
            None,
            &MetricsSnapshot::default(),
            &ProfileReport::default(),
        );
        assert!(
            !quiet.contains("Tier hop latencies"),
            "section omitted with no hop series"
        );
    }

    #[test]
    fn number_formatting_is_compact() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1.5), "1.5");
        assert_eq!(fmt_num(349.670000), "349.67");
        assert_eq!(fmt_num(3.0e-7), "3.000e-7");
        assert_eq!(fmt_num(2.5e8), "2.500e8");
    }
}
