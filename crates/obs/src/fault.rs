//! Deterministic fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] arms *sites* — named points that durable-state code
//! threads through [`fault_point`] (control-flow faults) or
//! [`fault_point_file`] (on-disk corruption faults). Each arm names a
//! site, the 1-based visit on which it fires, and a [`FaultAction`]:
//!
//! * `Kill` — the caller must abort immediately, leaving every file
//!   exactly as a `SIGKILL` at that instruction would. Surfaced as a
//!   [`FaultSignal::Kill`]; the training/checkpoint code propagates it
//!   as an error without running any cleanup.
//! * `IoError` — surfaced as an injected [`std::io::Error`], exercising
//!   the caller's error path (full disk, yanked volume).
//! * `TruncateTail(n)` / `FlipByte(offset)` — applied silently to the
//!   file a [`fault_point_file`] site passes in, simulating torn writes
//!   and bit rot that only a checksum can catch.
//!
//! Like the profiler, the whole layer is zero-cost when disarmed: every
//! site is a single relaxed atomic load until [`set_fault_plan`] arms
//! one. Plans are deterministic — [`FaultPlan::kill_after`] and
//! [`FaultPlan::from_seed`] derive fire points with splitmix64, so a
//! chaos run is reproducible from its seed alone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an armed site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Abort the caller as if the process died at this instruction.
    Kill,
    /// Surface an injected `std::io::Error` (kind `Other`).
    IoError,
    /// Silently truncate the site's file by `n` trailing bytes.
    TruncateTail(u64),
    /// Silently XOR the byte at `offset` with `0xFF` in the site's file.
    FlipByte(u64),
}

/// One armed site: fires `action` on the `fire_on_hit`-th visit
/// (1-based) of the site named `site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultArm {
    /// Site name, e.g. `"train.post_backward"`.
    pub site: String,
    /// 1-based visit count on which the arm fires.
    pub fire_on_hit: u64,
    /// What happens when it fires.
    pub action: FaultAction,
}

/// A set of armed sites. Install with [`set_fault_plan`]; every arm
/// fires at most once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The armed sites.
    pub arms: Vec<FaultArm>,
}

impl FaultPlan {
    /// An empty plan (no sites armed).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one arm.
    pub fn arm(mut self, site: &str, fire_on_hit: u64, action: FaultAction) -> Self {
        self.arms.push(FaultArm {
            site: site.to_string(),
            fire_on_hit: fire_on_hit.max(1),
            action,
        });
        self
    }

    /// A single-kill plan: `site` fires `Kill` on its `hit`-th visit.
    pub fn kill_after(site: &str, hit: u64) -> Self {
        FaultPlan::new().arm(site, hit, FaultAction::Kill)
    }

    /// Derives a deterministic one-kill plan from `seed`: picks one of
    /// `sites` and a visit count in `1..=max_hits` via splitmix64.
    pub fn from_seed(seed: u64, sites: &[&str], max_hits: u64) -> Self {
        assert!(!sites.is_empty(), "from_seed needs at least one site");
        let site = sites[(splitmix64(seed) % sites.len() as u64) as usize];
        let hit = 1 + splitmix64(seed.wrapping_add(0x9E37_79B9)) % max_hits.max(1);
        FaultPlan::kill_after(site, hit)
    }
}

/// Splitmix64 — the same mixing function the benches use for seed
/// derivation; public so chaos tests can derive per-seed kill points.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How a fired control-flow fault surfaces to the caller.
#[derive(Debug)]
pub enum FaultSignal {
    /// Abort now; leave all on-disk state untouched (simulated SIGKILL).
    Kill {
        /// The site that fired.
        site: String,
    },
    /// An injected I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FaultSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSignal::Kill { site } => write!(f, "injected kill at fault site {site}"),
            FaultSignal::Io(e) => write!(f, "injected i/o error: {e}"),
        }
    }
}

impl std::error::Error for FaultSignal {}

impl From<FaultSignal> for std::io::Error {
    fn from(signal: FaultSignal) -> Self {
        match signal {
            FaultSignal::Io(e) => e,
            FaultSignal::Kill { site } => std::io::Error::other(format!("killed at {site}")),
        }
    }
}

struct ActivePlan {
    plan: FaultPlan,
    hits: HashMap<String, u64>,
    fired: Vec<bool>,
}

static FAULTS_ARMED: AtomicBool = AtomicBool::new(false);
static ACTIVE: Mutex<Option<ActivePlan>> = Mutex::new(None);

/// Installs `plan`, replacing any previous one and resetting all visit
/// counters. An empty plan disarms (same as [`clear_fault_plan`]).
pub fn set_fault_plan(plan: FaultPlan) {
    let mut active = ACTIVE.lock().expect("fault plan poisoned");
    if plan.arms.is_empty() {
        *active = None;
        FAULTS_ARMED.store(false, Ordering::Release);
    } else {
        let fired = vec![false; plan.arms.len()];
        *active = Some(ActivePlan {
            plan,
            hits: HashMap::new(),
            fired,
        });
        FAULTS_ARMED.store(true, Ordering::Release);
    }
}

/// Disarms fault injection; every site goes back to one atomic load.
pub fn clear_fault_plan() {
    set_fault_plan(FaultPlan::new());
}

/// True while a plan is installed (cheap: one relaxed load).
pub fn faults_armed() -> bool {
    FAULTS_ARMED.load(Ordering::Relaxed)
}

fn fire(site: &str) -> Option<FaultAction> {
    let mut guard = ACTIVE.lock().expect("fault plan poisoned");
    let active = guard.as_mut()?;
    let hits = active.hits.entry(site.to_string()).or_insert(0);
    *hits += 1;
    let hit = *hits;
    for (i, arm) in active.plan.arms.iter().enumerate() {
        if !active.fired[i] && arm.site == site && arm.fire_on_hit == hit {
            active.fired[i] = true;
            return Some(arm.action);
        }
    }
    None
}

fn emit_fired(site: &str, action: FaultAction) {
    crate::counter("fault.injected").add(1);
    // Telemetry-writer sites must not re-enter the sinks they are
    // injected into; everything else announces itself.
    if !site.starts_with("telemetry.") {
        crate::warn!(
            "fault",
            "fault_injected",
            site = site,
            action = format!("{action:?}"),
        );
    }
}

/// A control-flow fault site. Returns `Ok(())` unless an armed plan
/// fires here, in which case the caller gets the [`FaultSignal`] to
/// propagate. File actions armed on a control-flow site degrade to
/// `IoError`.
pub fn fault_point(site: &str) -> Result<(), FaultSignal> {
    if !FAULTS_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match fire(site) {
        None => Ok(()),
        Some(action) => {
            emit_fired(site, action);
            match action {
                FaultAction::Kill => {
                    // A simulated SIGKILL leaves the same forensics a
                    // real one would: the flight recorder dumps with the
                    // site named in its final entry.
                    crate::recorder::record_kill_site(site);
                    Err(FaultSignal::Kill {
                        site: site.to_string(),
                    })
                }
                _ => Err(FaultSignal::Io(std::io::Error::other(format!(
                    "injected fault at {site}"
                )))),
            }
        }
    }
}

/// A fault site with an on-disk artifact: `TruncateTail`/`FlipByte`
/// arms silently corrupt `path` and return `Ok(())` (the program does
/// not notice — only a later checksum can); `Kill`/`IoError` behave as
/// in [`fault_point`].
pub fn fault_point_file(site: &str, path: &std::path::Path) -> Result<(), FaultSignal> {
    if !FAULTS_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match fire(site) {
        None => Ok(()),
        Some(action) => {
            emit_fired(site, action);
            match action {
                FaultAction::Kill => {
                    crate::recorder::record_kill_site(site);
                    Err(FaultSignal::Kill {
                        site: site.to_string(),
                    })
                }
                FaultAction::IoError => Err(FaultSignal::Io(std::io::Error::other(format!(
                    "injected fault at {site}"
                )))),
                FaultAction::TruncateTail(n) => {
                    let _ = truncate_tail(path, n);
                    Ok(())
                }
                FaultAction::FlipByte(offset) => {
                    let _ = flip_byte(path, offset);
                    Ok(())
                }
            }
        }
    }
}

/// Truncates the last `n` bytes of `path` (to zero length if shorter):
/// the on-disk shape of a torn write.
pub fn truncate_tail(path: &std::path::Path, n: u64) -> std::io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len.saturating_sub(n))?;
    Ok(())
}

/// XORs the byte at `offset` (clamped into the file) with `0xFF`: one
/// bit-rotted sector.
pub fn flip_byte(path: &std::path::Path, offset: u64) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    let i = (offset % bytes.len() as u64) as usize;
    bytes[i] ^= 0xFF;
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault state is process-global; tests in this module serialize on
    // one lock so plans never bleed across.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_sites_are_noops() {
        let _g = locked();
        clear_fault_plan();
        assert!(!faults_armed());
        for _ in 0..100 {
            fault_point("anything").expect("disarmed site must pass");
        }
    }

    #[test]
    fn kill_fires_on_the_exact_hit_and_only_once() {
        let _g = locked();
        set_fault_plan(FaultPlan::kill_after("site.a", 3));
        assert!(faults_armed());
        assert!(fault_point("site.a").is_ok());
        assert!(fault_point("site.b").is_ok(), "other sites unaffected");
        assert!(fault_point("site.a").is_ok());
        match fault_point("site.a") {
            Err(FaultSignal::Kill { site }) => assert_eq!(site, "site.a"),
            other => panic!("expected kill on third hit, got {other:?}"),
        }
        assert!(fault_point("site.a").is_ok(), "arms fire at most once");
        clear_fault_plan();
    }

    #[test]
    fn io_error_action_surfaces_an_io_error() {
        let _g = locked();
        set_fault_plan(FaultPlan::new().arm("site.io", 1, FaultAction::IoError));
        match fault_point("site.io") {
            Err(FaultSignal::Io(e)) => assert!(e.to_string().contains("site.io")),
            other => panic!("expected io error, got {other:?}"),
        }
        clear_fault_plan();
    }

    #[test]
    fn file_actions_corrupt_silently() {
        let _g = locked();
        let dir = std::env::temp_dir().join("privim-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        set_fault_plan(
            FaultPlan::new()
                .arm("f.trunc", 1, FaultAction::TruncateTail(3))
                .arm("f.flip", 1, FaultAction::FlipByte(2)),
        );
        fault_point_file("f.trunc", &path).expect("silent corruption returns Ok");
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2, 3, 4, 5]);
        fault_point_file("f.flip", &path).expect("silent corruption returns Ok");
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2, 3 ^ 0xFF, 4, 5]);
        clear_fault_plan();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let _g = locked();
        let sites = ["a", "b", "c"];
        let p1 = FaultPlan::from_seed(42, &sites, 10);
        let p2 = FaultPlan::from_seed(42, &sites, 10);
        assert_eq!(p1, p2);
        assert_eq!(p1.arms.len(), 1);
        assert!((1..=10).contains(&p1.arms[0].fire_on_hit));
        // Different seeds cover different fire points eventually.
        let distinct: std::collections::HashSet<(String, u64)> = (0..64)
            .map(|s| {
                let p = FaultPlan::from_seed(s, &sites, 10);
                (p.arms[0].site.clone(), p.arms[0].fire_on_hit)
            })
            .collect();
        assert!(distinct.len() > 5, "seeded plans should spread out");
    }

    #[test]
    fn replacing_the_plan_resets_counters() {
        let _g = locked();
        set_fault_plan(FaultPlan::kill_after("site.r", 2));
        assert!(fault_point("site.r").is_ok());
        set_fault_plan(FaultPlan::kill_after("site.r", 2));
        assert!(fault_point("site.r").is_ok(), "counter restarted");
        assert!(fault_point("site.r").is_err());
        clear_fault_plan();
    }
}
