//! Severity levels and the `PRIVIM_LOG` environment variable.

use std::fmt;
use std::str::FromStr;

/// Event severity, ordered from most to least severe.
///
/// The `u8` repr is load-bearing: `enabled()` compares raw discriminants
/// against a global atomic, so `Error` must stay the smallest value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// The run is broken or produced an unusable artifact.
    Error = 0,
    /// Something degraded but the run continues.
    Warn = 1,
    /// Coarse run progress: per-epoch summaries, phase completions.
    Info = 2,
    /// Fine-grained internals: accountant spend, estimator throughput.
    Debug = 3,
    /// Everything, including per-sample detail.
    Trace = 4,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Lower-case name (`"info"`), the form used in JSONL output and
    /// `PRIVIM_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses the `PRIVIM_LOG` environment variable: a level name, or
    /// `off`/unset/unparsable for `None` (no stderr logging).
    pub fn from_env() -> Option<Level> {
        let raw = std::env::var("PRIVIM_LOG").ok()?;
        raw.parse().ok()
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level: {other} (expected error|warn|info|debug|trace|off)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        assert_eq!(Level::Error as u8, 0);
        assert_eq!(Level::Trace as u8, 4);
    }

    #[test]
    fn parse_round_trips() {
        for l in Level::ALL {
            assert_eq!(l.as_str().parse::<Level>().unwrap(), l);
        }
        assert_eq!("WARNING".parse::<Level>().unwrap(), Level::Warn);
        assert!(" Debug ".parse::<Level>().is_ok());
        assert!("verbose".parse::<Level>().is_err());
    }
}
