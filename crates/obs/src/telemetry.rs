//! The per-run telemetry report and its JSONL aggregation.
//!
//! [`RunTelemetry`] is the machine-readable summary of one pipeline run:
//! per-epoch training records, per-phase wall-clock timings, and the
//! cumulative privacy spend. It can be built directly, or reconstructed
//! from a JSONL event file written by [`crate::JsonlSink`] with
//! [`RunTelemetry::from_jsonl`], using the event conventions the
//! instrumented crates follow (see DESIGN.md "Observability"):
//!
//! | target  | message   | fields                                            |
//! |---------|-----------|---------------------------------------------------|
//! | `run`   | `start`   | `seed`, plus free-form context                    |
//! | `train` | `epoch`   | `epoch`, `loss`, `clip_fraction`, `grad_norm_pre`,|
//! |         |           | `grad_norm_post`, `noise_std`, `epsilon_spent`    |
//! | `span`  | *name*    | `secs`, `depth`, `path`                           |
//! | `dp`    | `epsilon` | `step`, `epsilon`, `alpha`                        |
//! | `dp`    | `mechanism` | `step`, `mechanism`, `sigma`, `sensitivity`,    |
//! |         |           | `sampling_rate`, `max_occurrences`, `batch_size`, |
//! |         |           | `container_size`, `delta`, `epsilon_after`, `alpha` |

use crate::json::{self, JsonValue};

/// One training iteration ("epoch" in the paper's Table III sense).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochRecord {
    /// Iteration index (0-based).
    pub epoch: u64,
    /// Mean batch loss.
    pub loss: f64,
    /// Fraction of per-subgraph gradients whose norm exceeded the clip
    /// bound `C` (None for non-private runs, which never clip).
    pub clip_fraction: Option<f64>,
    /// Mean per-subgraph gradient l2 norm before clipping.
    pub grad_norm_pre: Option<f64>,
    /// Mean per-subgraph gradient l2 norm after clipping.
    pub grad_norm_post: Option<f64>,
    /// Per-coordinate noise standard deviation `σ · Δ_g` injected this
    /// step (None for non-private runs).
    pub noise_std: Option<f64>,
    /// Cumulative `(ε, δ)`-DP spend through this iteration.
    pub epsilon_spent: Option<f64>,
}

/// Aggregated wall-clock time of one named phase (a span name).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Span name (`"extraction"`, `"training"`, …).
    pub name: String,
    /// Total seconds across all occurrences.
    pub secs: f64,
    /// Number of span occurrences aggregated.
    pub count: u64,
}

/// One privacy-mechanism invocation from the privacy-budget ledger
/// (a `dp`/`mechanism` event). Carries everything needed to replay the
/// RDP accounting offline: the mechanism's noise multiplier, the
/// sensitivity and subsampling structure, and the accountant's
/// cumulative `(ε, α)` after this step.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerRecord {
    /// Accounted step index (1-based, matching `dp`/`epsilon` events).
    pub step: u64,
    /// Mechanism kind, e.g. `"subsampled_gaussian"`.
    pub mechanism: String,
    /// Noise multiplier σ (noise std = σ · sensitivity).
    pub sigma: f64,
    /// Group sensitivity Δ_g = C · N_g of one step.
    pub sensitivity: f64,
    /// Per-element participation rate q = N_g / m (capped at 1).
    pub sampling_rate: f64,
    /// Max occurrences N_g of one node across sampled subgraphs.
    pub max_occurrences: u64,
    /// Subgraphs per batch B.
    pub batch_size: u64,
    /// Container (subgraph pool) size m.
    pub container_size: u64,
    /// Target δ used for the RDP→(ε, δ) conversion.
    pub delta: f64,
    /// Cumulative ε after this step.
    pub epsilon_after: f64,
    /// RDP order α that realized the ε minimum at this step.
    pub alpha: f64,
}

/// Machine-readable telemetry of one run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTelemetry {
    /// RNG seed the run was launched with, if recorded.
    pub seed: Option<u64>,
    /// Per-iteration training records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Aggregated phase timings, in first-seen order.
    pub phases: Vec<PhaseTiming>,
    /// Cumulative ε after each accounted step (from `dp`/`epsilon`
    /// events; empty for non-private runs).
    pub epsilon_trace: Vec<f64>,
    /// Privacy-budget ledger: one record per mechanism invocation
    /// (from `dp`/`mechanism` events; empty for non-private runs).
    #[cfg_attr(feature = "serde", serde(default))]
    pub ledger: Vec<LedgerRecord>,
    /// Total number of events aggregated.
    pub events_total: u64,
    /// Events whose `(target, message)` kind this binary does not
    /// aggregate — skipped but counted, so a dump written by a newer
    /// binary (extra `trace`/`recorder` events) still parses and the
    /// skip is visible.
    #[cfg_attr(feature = "serde", serde(default))]
    pub events_unknown: u64,
    /// The run's trace id (32 hex digits), from the first event carrying
    /// a top-level `trace_id` key.
    #[cfg_attr(feature = "serde", serde(default))]
    pub trace_id: Option<String>,
}

impl RunTelemetry {
    /// The total seconds recorded for phase `name`, if present.
    pub fn phase_secs(&self, name: &str) -> Option<f64> {
        self.phases.iter().find(|p| p.name == name).map(|p| p.secs)
    }

    /// The final cumulative ε, if any was recorded.
    pub fn final_epsilon(&self) -> Option<f64> {
        self.epsilon_trace
            .last()
            .copied()
            .or_else(|| self.epochs.iter().rev().find_map(|e| e.epsilon_spent))
    }

    /// Reconstructs a report from JSONL event lines (the format
    /// [`crate::JsonlSink`] writes). Unknown events count toward
    /// `events_total` but are otherwise ignored, so the schema can grow.
    pub fn from_jsonl(text: &str) -> Result<RunTelemetry, String> {
        let mut report = RunTelemetry::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            report.events_total += 1;
            if report.trace_id.is_none() {
                report.trace_id = value
                    .get("trace_id")
                    .and_then(|v| v.as_str().map(str::to_string));
            }
            let target = value
                .get("target")
                .and_then(JsonValue::as_str)
                .unwrap_or("");
            let message = value
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or("");
            let field = |name: &str| value.get("fields").and_then(|f| f.get(name)).cloned();
            let num = |name: &str| field(name).and_then(|v| v.as_f64());
            match (target, message) {
                ("run", "start") => {
                    if report.seed.is_none() {
                        report.seed = field("seed").and_then(|v| v.as_u64());
                    }
                }
                ("train", "epoch") => {
                    report.epochs.push(EpochRecord {
                        epoch: field("epoch")
                            .and_then(|v| v.as_u64())
                            .unwrap_or(report.epochs.len() as u64),
                        loss: num("loss").unwrap_or(f64::NAN),
                        clip_fraction: num("clip_fraction"),
                        grad_norm_pre: num("grad_norm_pre"),
                        grad_norm_post: num("grad_norm_post"),
                        noise_std: num("noise_std"),
                        epsilon_spent: num("epsilon_spent"),
                    });
                }
                ("span", name) => {
                    let secs = num("secs").unwrap_or(0.0);
                    match report.phases.iter_mut().find(|p| p.name == name) {
                        Some(p) => {
                            p.secs += secs;
                            p.count += 1;
                        }
                        None => report.phases.push(PhaseTiming {
                            name: name.to_string(),
                            secs,
                            count: 1,
                        }),
                    }
                }
                ("dp", "epsilon") => {
                    if let Some(eps) = num("epsilon") {
                        report.epsilon_trace.push(eps);
                    }
                }
                ("dp", "mechanism") => {
                    let int = |name: &str| field(name).and_then(|v| v.as_u64());
                    report.ledger.push(LedgerRecord {
                        step: int("step").unwrap_or(report.ledger.len() as u64 + 1),
                        mechanism: field("mechanism")
                            .and_then(|v| v.as_str().map(str::to_string))
                            .unwrap_or_default(),
                        sigma: num("sigma").unwrap_or(f64::NAN),
                        sensitivity: num("sensitivity").unwrap_or(f64::NAN),
                        sampling_rate: num("sampling_rate").unwrap_or(f64::NAN),
                        max_occurrences: int("max_occurrences").unwrap_or(0),
                        batch_size: int("batch_size").unwrap_or(0),
                        container_size: int("container_size").unwrap_or(0),
                        delta: num("delta").unwrap_or(f64::NAN),
                        epsilon_after: num("epsilon_after").unwrap_or(f64::NAN),
                        alpha: num("alpha").unwrap_or(f64::NAN),
                    });
                }
                // Forward compatibility: kinds this binary does not
                // aggregate (newer trace/recorder events, console lines,
                // free-form subsystem chatter) are skipped and counted.
                _ => report.events_unknown += 1,
            }
        }
        Ok(report)
    }

    /// Serializes to a JSON object using the built-in writer (available
    /// with or without the `serde` feature).
    pub fn to_json(&self) -> String {
        use std::collections::BTreeMap;
        let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Num);
        let epochs: Vec<JsonValue> = self
            .epochs
            .iter()
            .map(|e| {
                let mut m = BTreeMap::new();
                m.insert("epoch".into(), JsonValue::Num(e.epoch as f64));
                m.insert("loss".into(), JsonValue::Num(e.loss));
                m.insert("clip_fraction".into(), opt(e.clip_fraction));
                m.insert("grad_norm_pre".into(), opt(e.grad_norm_pre));
                m.insert("grad_norm_post".into(), opt(e.grad_norm_post));
                m.insert("noise_std".into(), opt(e.noise_std));
                m.insert("epsilon_spent".into(), opt(e.epsilon_spent));
                JsonValue::Obj(m)
            })
            .collect();
        let phases: Vec<JsonValue> = self
            .phases
            .iter()
            .map(|p| {
                let mut m = BTreeMap::new();
                m.insert("name".into(), JsonValue::Str(p.name.clone()));
                m.insert("secs".into(), JsonValue::Num(p.secs));
                m.insert("count".into(), JsonValue::Num(p.count as f64));
                JsonValue::Obj(m)
            })
            .collect();
        let ledger: Vec<JsonValue> = self
            .ledger
            .iter()
            .map(|l| {
                let mut m = BTreeMap::new();
                m.insert("step".into(), JsonValue::Num(l.step as f64));
                m.insert("mechanism".into(), JsonValue::Str(l.mechanism.clone()));
                m.insert("sigma".into(), JsonValue::Num(l.sigma));
                m.insert("sensitivity".into(), JsonValue::Num(l.sensitivity));
                m.insert("sampling_rate".into(), JsonValue::Num(l.sampling_rate));
                m.insert(
                    "max_occurrences".into(),
                    JsonValue::Num(l.max_occurrences as f64),
                );
                m.insert("batch_size".into(), JsonValue::Num(l.batch_size as f64));
                m.insert(
                    "container_size".into(),
                    JsonValue::Num(l.container_size as f64),
                );
                m.insert("delta".into(), JsonValue::Num(l.delta));
                m.insert("epsilon_after".into(), JsonValue::Num(l.epsilon_after));
                m.insert("alpha".into(), JsonValue::Num(l.alpha));
                JsonValue::Obj(m)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert(
            "seed".into(),
            self.seed
                .map_or(JsonValue::Null, |s| JsonValue::Num(s as f64)),
        );
        root.insert("epochs".into(), JsonValue::Arr(epochs));
        root.insert("phases".into(), JsonValue::Arr(phases));
        root.insert("ledger".into(), JsonValue::Arr(ledger));
        root.insert(
            "epsilon_trace".into(),
            JsonValue::Arr(
                self.epsilon_trace
                    .iter()
                    .map(|&e| JsonValue::Num(e))
                    .collect(),
            ),
        );
        root.insert(
            "events_total".into(),
            JsonValue::Num(self.events_total as f64),
        );
        root.insert(
            "events_unknown".into(),
            JsonValue::Num(self.events_unknown as f64),
        );
        root.insert(
            "trace_id".into(),
            self.trace_id
                .as_ref()
                .map_or(JsonValue::Null, |t| JsonValue::Str(t.clone())),
        );
        JsonValue::Obj(root).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, FieldValue};
    use crate::Level;

    fn jsonl(events: &[Event]) -> String {
        events.iter().map(|e| e.to_json_line() + "\n").collect()
    }

    fn epoch_event(epoch: u64, loss: f64, eps: f64) -> Event {
        Event::new(
            Level::Info,
            "train",
            "epoch",
            vec![
                ("epoch", FieldValue::U64(epoch)),
                ("loss", FieldValue::F64(loss)),
                ("clip_fraction", FieldValue::F64(0.5)),
                ("grad_norm_pre", FieldValue::F64(2.0)),
                ("grad_norm_post", FieldValue::F64(1.0)),
                ("noise_std", FieldValue::F64(0.3)),
                ("epsilon_spent", FieldValue::F64(eps)),
            ],
        )
    }

    #[test]
    fn jsonl_round_trip_reconstructs_the_run() {
        let events = vec![
            Event::new(
                Level::Info,
                "run",
                "start",
                vec![("seed", FieldValue::U64(42))],
            ),
            Event::new(
                Level::Debug,
                "span",
                "extraction",
                vec![
                    ("secs", FieldValue::F64(0.5)),
                    ("depth", FieldValue::U64(0)),
                ],
            ),
            epoch_event(0, 1.5, 0.8),
            Event::new(
                Level::Debug,
                "dp",
                "epsilon",
                vec![
                    ("step", FieldValue::U64(1)),
                    ("epsilon", FieldValue::F64(0.8)),
                ],
            ),
            epoch_event(1, 1.2, 1.1),
            Event::new(
                Level::Debug,
                "dp",
                "epsilon",
                vec![
                    ("step", FieldValue::U64(2)),
                    ("epsilon", FieldValue::F64(1.1)),
                ],
            ),
            Event::new(
                Level::Debug,
                "span",
                "extraction",
                vec![("secs", FieldValue::F64(0.25))],
            ),
            Event::new(
                Level::Debug,
                "span",
                "training",
                vec![("secs", FieldValue::F64(2.0))],
            ),
        ];
        let report = RunTelemetry::from_jsonl(&jsonl(&events)).unwrap();
        assert_eq!(report.seed, Some(42));
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[0].epoch, 0);
        assert_eq!(report.epochs[0].loss, 1.5);
        assert_eq!(report.epochs[0].clip_fraction, Some(0.5));
        assert_eq!(report.epochs[1].epsilon_spent, Some(1.1));
        assert_eq!(report.phase_secs("extraction"), Some(0.75));
        assert_eq!(report.phase_secs("training"), Some(2.0));
        assert_eq!(report.phases[0].count, 2);
        assert_eq!(report.epsilon_trace, vec![0.8, 1.1]);
        assert_eq!(report.final_epsilon(), Some(1.1));
        assert_eq!(report.events_total, events.len() as u64);
    }

    #[test]
    fn unknown_events_are_tolerated() {
        let text = concat!(
            r#"{"ts_us":1,"level":"info","target":"future","message":"thing","fields":{}}"#,
            "\n\n",
            r#"{"ts_us":2,"level":"info","target":"train","message":"epoch","fields":{"loss":0.5}}"#,
            "\n",
        );
        let report = RunTelemetry::from_jsonl(text).unwrap();
        assert_eq!(report.events_total, 2);
        assert_eq!(report.events_unknown, 1, "the future event is counted");
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(
            report.epochs[0].epoch, 0,
            "missing epoch falls back to position"
        );
        assert_eq!(report.epochs[0].clip_fraction, None);
    }

    #[test]
    fn mixed_version_dump_with_trace_and_recorder_events_parses() {
        // A dump as a newer binary would write it: known kinds stamped
        // with trace ids, plus trace/recorder kinds this parser has no
        // aggregation for. Nothing fails; unknown kinds are counted and
        // the run's trace id is recovered from the first stamped line.
        let text = concat!(
            r#"{"ts_us":1,"level":"info","target":"run","message":"start","fields":{"seed":9},"trace_id":"00c0ffee00c0ffee00c0ffee00c0ffee","span_id":"1122334455667788"}"#,
            "\n",
            r#"{"ts_us":2,"level":"debug","target":"trace","message":"request","fields":{"route":"seeds"},"trace_id":"00c0ffee00c0ffee00c0ffee00c0ffee"}"#,
            "\n",
            r#"{"ts_us":3,"level":"info","target":"train","message":"epoch","fields":{"epoch":0,"loss":0.5},"trace_id":"00c0ffee00c0ffee00c0ffee00c0ffee","span_id":"99aabbccddeeff00","parent_span_id":"1122334455667788"}"#,
            "\n",
            r#"{"seq":4,"ts_us":4,"level":"warn","target":"recorder","message":"kill","detail":"site=train.post_backward","thread":"main"}"#,
            "\n",
        );
        let report = RunTelemetry::from_jsonl(text).unwrap();
        assert_eq!(report.events_total, 4);
        assert_eq!(report.events_unknown, 2, "trace + recorder kinds skipped");
        assert_eq!(report.seed, Some(9));
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(
            report.trace_id.as_deref(),
            Some("00c0ffee00c0ffee00c0ffee00c0ffee")
        );
        let parsed = crate::json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("events_unknown").unwrap().as_u64(), Some(2));
        assert_eq!(
            parsed.get("trace_id").unwrap().as_str(),
            Some("00c0ffee00c0ffee00c0ffee00c0ffee")
        );
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let err = RunTelemetry::from_jsonl("{}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn hand_rolled_json_parses_back() {
        let report = RunTelemetry {
            seed: Some(7),
            epochs: vec![EpochRecord {
                epoch: 0,
                loss: 0.5,
                ..EpochRecord::default()
            }],
            phases: vec![PhaseTiming {
                name: "training".into(),
                secs: 1.5,
                count: 1,
            }],
            epsilon_trace: vec![0.4],
            ledger: vec![LedgerRecord {
                step: 1,
                mechanism: "subsampled_gaussian".into(),
                sigma: 2.0,
                epsilon_after: 0.4,
                ..LedgerRecord::default()
            }],
            events_total: 3,
            events_unknown: 1,
            trace_id: Some("00c0ffee00c0ffee00c0ffee00c0ffee".into()),
        };
        let parsed = crate::json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("events_total").unwrap().as_u64(), Some(3));
        let ledger = parsed.get("ledger").unwrap();
        let entry = ledger.get_index(0).expect("ledger entry serialized");
        assert_eq!(
            entry.get("mechanism").unwrap().as_str(),
            Some("subsampled_gaussian")
        );
    }

    #[test]
    fn mechanism_events_build_the_ledger() {
        let events = vec![
            Event::new(
                Level::Debug,
                "dp",
                "mechanism",
                vec![
                    ("step", FieldValue::U64(1)),
                    ("mechanism", FieldValue::Str("subsampled_gaussian".into())),
                    ("sigma", FieldValue::F64(3.5)),
                    ("sensitivity", FieldValue::F64(2.0)),
                    ("sampling_rate", FieldValue::F64(0.125)),
                    ("max_occurrences", FieldValue::U64(4)),
                    ("batch_size", FieldValue::U64(8)),
                    ("container_size", FieldValue::U64(32)),
                    ("delta", FieldValue::F64(1e-5)),
                    ("epsilon_after", FieldValue::F64(0.31)),
                    ("alpha", FieldValue::F64(8.0)),
                ],
            ),
            Event::new(
                Level::Debug,
                "dp",
                "mechanism",
                vec![
                    ("step", FieldValue::U64(2)),
                    ("mechanism", FieldValue::Str("subsampled_gaussian".into())),
                    ("sigma", FieldValue::F64(3.5)),
                    ("epsilon_after", FieldValue::F64(0.47)),
                ],
            ),
        ];
        let report = RunTelemetry::from_jsonl(&jsonl(&events)).unwrap();
        assert_eq!(report.ledger.len(), 2);
        let first = &report.ledger[0];
        assert_eq!(first.step, 1);
        assert_eq!(first.mechanism, "subsampled_gaussian");
        assert_eq!(first.sigma, 3.5);
        assert_eq!(first.sampling_rate, 0.125);
        assert_eq!(first.max_occurrences, 4);
        assert_eq!(first.batch_size, 8);
        assert_eq!(first.container_size, 32);
        assert_eq!(first.delta, 1e-5);
        assert_eq!(first.epsilon_after, 0.31);
        assert_eq!(first.alpha, 8.0);
        assert_eq!(report.ledger[1].epsilon_after, 0.47);
        assert!(
            report.ledger[1].epsilon_after > report.ledger[0].epsilon_after,
            "cumulative ε must grow"
        );
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip() {
        let report = RunTelemetry {
            seed: Some(9),
            epochs: vec![EpochRecord {
                epoch: 1,
                loss: 0.25,
                clip_fraction: Some(0.1),
                ..EpochRecord::default()
            }],
            phases: vec![PhaseTiming {
                name: "inference".into(),
                secs: 0.1,
                count: 2,
            }],
            epsilon_trace: vec![0.5, 0.9],
            ledger: vec![LedgerRecord {
                step: 1,
                mechanism: "subsampled_gaussian".into(),
                sigma: 1.5,
                sensitivity: 4.0,
                sampling_rate: 0.25,
                max_occurrences: 4,
                batch_size: 8,
                container_size: 16,
                delta: 1e-5,
                epsilon_after: 0.5,
                alpha: 16.0,
            }],
            events_total: 5,
            events_unknown: 2,
            trace_id: Some("deadbeefdeadbeefdeadbeefdeadbeef".into()),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: RunTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
