//! The per-run telemetry report and its JSONL aggregation.
//!
//! [`RunTelemetry`] is the machine-readable summary of one pipeline run:
//! per-epoch training records, per-phase wall-clock timings, and the
//! cumulative privacy spend. It can be built directly, or reconstructed
//! from a JSONL event file written by [`crate::JsonlSink`] with
//! [`RunTelemetry::from_jsonl`], using the event conventions the
//! instrumented crates follow (see DESIGN.md "Observability"):
//!
//! | target  | message   | fields                                            |
//! |---------|-----------|---------------------------------------------------|
//! | `run`   | `start`   | `seed`, plus free-form context                    |
//! | `train` | `epoch`   | `epoch`, `loss`, `clip_fraction`, `grad_norm_pre`,|
//! |         |           | `grad_norm_post`, `noise_std`, `epsilon_spent`    |
//! | `span`  | *name*    | `secs`, `depth`, `path`                           |
//! | `dp`    | `epsilon` | `step`, `epsilon`, `alpha`                        |

use crate::json::{self, JsonValue};

/// One training iteration ("epoch" in the paper's Table III sense).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochRecord {
    /// Iteration index (0-based).
    pub epoch: u64,
    /// Mean batch loss.
    pub loss: f64,
    /// Fraction of per-subgraph gradients whose norm exceeded the clip
    /// bound `C` (None for non-private runs, which never clip).
    pub clip_fraction: Option<f64>,
    /// Mean per-subgraph gradient l2 norm before clipping.
    pub grad_norm_pre: Option<f64>,
    /// Mean per-subgraph gradient l2 norm after clipping.
    pub grad_norm_post: Option<f64>,
    /// Per-coordinate noise standard deviation `σ · Δ_g` injected this
    /// step (None for non-private runs).
    pub noise_std: Option<f64>,
    /// Cumulative `(ε, δ)`-DP spend through this iteration.
    pub epsilon_spent: Option<f64>,
}

/// Aggregated wall-clock time of one named phase (a span name).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Span name (`"extraction"`, `"training"`, …).
    pub name: String,
    /// Total seconds across all occurrences.
    pub secs: f64,
    /// Number of span occurrences aggregated.
    pub count: u64,
}

/// Machine-readable telemetry of one run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTelemetry {
    /// RNG seed the run was launched with, if recorded.
    pub seed: Option<u64>,
    /// Per-iteration training records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Aggregated phase timings, in first-seen order.
    pub phases: Vec<PhaseTiming>,
    /// Cumulative ε after each accounted step (from `dp`/`epsilon`
    /// events; empty for non-private runs).
    pub epsilon_trace: Vec<f64>,
    /// Total number of events aggregated.
    pub events_total: u64,
}

impl RunTelemetry {
    /// The total seconds recorded for phase `name`, if present.
    pub fn phase_secs(&self, name: &str) -> Option<f64> {
        self.phases.iter().find(|p| p.name == name).map(|p| p.secs)
    }

    /// The final cumulative ε, if any was recorded.
    pub fn final_epsilon(&self) -> Option<f64> {
        self.epsilon_trace
            .last()
            .copied()
            .or_else(|| self.epochs.iter().rev().find_map(|e| e.epsilon_spent))
    }

    /// Reconstructs a report from JSONL event lines (the format
    /// [`crate::JsonlSink`] writes). Unknown events count toward
    /// `events_total` but are otherwise ignored, so the schema can grow.
    pub fn from_jsonl(text: &str) -> Result<RunTelemetry, String> {
        let mut report = RunTelemetry::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value =
                json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            report.events_total += 1;
            let target = value.get("target").and_then(JsonValue::as_str).unwrap_or("");
            let message = value.get("message").and_then(JsonValue::as_str).unwrap_or("");
            let field = |name: &str| value.get("fields").and_then(|f| f.get(name)).cloned();
            let num = |name: &str| field(name).and_then(|v| v.as_f64());
            match (target, message) {
                ("run", "start") => {
                    if report.seed.is_none() {
                        report.seed = field("seed").and_then(|v| v.as_u64());
                    }
                }
                ("train", "epoch") => {
                    report.epochs.push(EpochRecord {
                        epoch: field("epoch")
                            .and_then(|v| v.as_u64())
                            .unwrap_or(report.epochs.len() as u64),
                        loss: num("loss").unwrap_or(f64::NAN),
                        clip_fraction: num("clip_fraction"),
                        grad_norm_pre: num("grad_norm_pre"),
                        grad_norm_post: num("grad_norm_post"),
                        noise_std: num("noise_std"),
                        epsilon_spent: num("epsilon_spent"),
                    });
                }
                ("span", name) => {
                    let secs = num("secs").unwrap_or(0.0);
                    match report.phases.iter_mut().find(|p| p.name == name) {
                        Some(p) => {
                            p.secs += secs;
                            p.count += 1;
                        }
                        None => report.phases.push(PhaseTiming {
                            name: name.to_string(),
                            secs,
                            count: 1,
                        }),
                    }
                }
                ("dp", "epsilon") => {
                    if let Some(eps) = num("epsilon") {
                        report.epsilon_trace.push(eps);
                    }
                }
                _ => {}
            }
        }
        Ok(report)
    }

    /// Serializes to a JSON object using the built-in writer (available
    /// with or without the `serde` feature).
    pub fn to_json(&self) -> String {
        use std::collections::BTreeMap;
        let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Num);
        let epochs: Vec<JsonValue> = self
            .epochs
            .iter()
            .map(|e| {
                let mut m = BTreeMap::new();
                m.insert("epoch".into(), JsonValue::Num(e.epoch as f64));
                m.insert("loss".into(), JsonValue::Num(e.loss));
                m.insert("clip_fraction".into(), opt(e.clip_fraction));
                m.insert("grad_norm_pre".into(), opt(e.grad_norm_pre));
                m.insert("grad_norm_post".into(), opt(e.grad_norm_post));
                m.insert("noise_std".into(), opt(e.noise_std));
                m.insert("epsilon_spent".into(), opt(e.epsilon_spent));
                JsonValue::Obj(m)
            })
            .collect();
        let phases: Vec<JsonValue> = self
            .phases
            .iter()
            .map(|p| {
                let mut m = BTreeMap::new();
                m.insert("name".into(), JsonValue::Str(p.name.clone()));
                m.insert("secs".into(), JsonValue::Num(p.secs));
                m.insert("count".into(), JsonValue::Num(p.count as f64));
                JsonValue::Obj(m)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert(
            "seed".into(),
            self.seed.map_or(JsonValue::Null, |s| JsonValue::Num(s as f64)),
        );
        root.insert("epochs".into(), JsonValue::Arr(epochs));
        root.insert("phases".into(), JsonValue::Arr(phases));
        root.insert(
            "epsilon_trace".into(),
            JsonValue::Arr(self.epsilon_trace.iter().map(|&e| JsonValue::Num(e)).collect()),
        );
        root.insert("events_total".into(), JsonValue::Num(self.events_total as f64));
        JsonValue::Obj(root).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, FieldValue};
    use crate::Level;

    fn jsonl(events: &[Event]) -> String {
        events.iter().map(|e| e.to_json_line() + "\n").collect()
    }

    fn epoch_event(epoch: u64, loss: f64, eps: f64) -> Event {
        Event::new(
            Level::Info,
            "train",
            "epoch",
            vec![
                ("epoch", FieldValue::U64(epoch)),
                ("loss", FieldValue::F64(loss)),
                ("clip_fraction", FieldValue::F64(0.5)),
                ("grad_norm_pre", FieldValue::F64(2.0)),
                ("grad_norm_post", FieldValue::F64(1.0)),
                ("noise_std", FieldValue::F64(0.3)),
                ("epsilon_spent", FieldValue::F64(eps)),
            ],
        )
    }

    #[test]
    fn jsonl_round_trip_reconstructs_the_run() {
        let events = vec![
            Event::new(Level::Info, "run", "start", vec![("seed", FieldValue::U64(42))]),
            Event::new(
                Level::Debug,
                "span",
                "extraction",
                vec![("secs", FieldValue::F64(0.5)), ("depth", FieldValue::U64(0))],
            ),
            epoch_event(0, 1.5, 0.8),
            Event::new(
                Level::Debug,
                "dp",
                "epsilon",
                vec![("step", FieldValue::U64(1)), ("epsilon", FieldValue::F64(0.8))],
            ),
            epoch_event(1, 1.2, 1.1),
            Event::new(
                Level::Debug,
                "dp",
                "epsilon",
                vec![("step", FieldValue::U64(2)), ("epsilon", FieldValue::F64(1.1))],
            ),
            Event::new(
                Level::Debug,
                "span",
                "extraction",
                vec![("secs", FieldValue::F64(0.25))],
            ),
            Event::new(
                Level::Debug,
                "span",
                "training",
                vec![("secs", FieldValue::F64(2.0))],
            ),
        ];
        let report = RunTelemetry::from_jsonl(&jsonl(&events)).unwrap();
        assert_eq!(report.seed, Some(42));
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[0].epoch, 0);
        assert_eq!(report.epochs[0].loss, 1.5);
        assert_eq!(report.epochs[0].clip_fraction, Some(0.5));
        assert_eq!(report.epochs[1].epsilon_spent, Some(1.1));
        assert_eq!(report.phase_secs("extraction"), Some(0.75));
        assert_eq!(report.phase_secs("training"), Some(2.0));
        assert_eq!(report.phases[0].count, 2);
        assert_eq!(report.epsilon_trace, vec![0.8, 1.1]);
        assert_eq!(report.final_epsilon(), Some(1.1));
        assert_eq!(report.events_total, events.len() as u64);
    }

    #[test]
    fn unknown_events_are_tolerated() {
        let text = concat!(
            r#"{"ts_us":1,"level":"info","target":"future","message":"thing","fields":{}}"#,
            "\n\n",
            r#"{"ts_us":2,"level":"info","target":"train","message":"epoch","fields":{"loss":0.5}}"#,
            "\n",
        );
        let report = RunTelemetry::from_jsonl(text).unwrap();
        assert_eq!(report.events_total, 2);
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.epochs[0].epoch, 0, "missing epoch falls back to position");
        assert_eq!(report.epochs[0].clip_fraction, None);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let err = RunTelemetry::from_jsonl("{}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn hand_rolled_json_parses_back() {
        let report = RunTelemetry {
            seed: Some(7),
            epochs: vec![EpochRecord { epoch: 0, loss: 0.5, ..EpochRecord::default() }],
            phases: vec![PhaseTiming { name: "training".into(), secs: 1.5, count: 1 }],
            epsilon_trace: vec![0.4],
            events_total: 3,
        };
        let parsed = crate::json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("events_total").unwrap().as_u64(), Some(3));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip() {
        let report = RunTelemetry {
            seed: Some(9),
            epochs: vec![EpochRecord {
                epoch: 1,
                loss: 0.25,
                clip_fraction: Some(0.1),
                ..EpochRecord::default()
            }],
            phases: vec![PhaseTiming { name: "inference".into(), secs: 0.1, count: 2 }],
            epsilon_trace: vec![0.5, 0.9],
            events_total: 5,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: RunTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
