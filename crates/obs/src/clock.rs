//! Monotonic time sources.
//!
//! All telemetry timestamps are microseconds since an arbitrary origin
//! (process start for the default clock). Spans take a [`Clock`] so tests
//! can drive time deterministically with [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait Clock: Send + Sync {
    /// Microseconds since this clock's origin. Must be non-decreasing.
    fn now_micros(&self) -> u64;
}

/// The process-wide monotonic clock: microseconds since the first call in
/// this process.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonotonicClock;

static START: OnceLock<Instant> = OnceLock::new();

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        now_micros()
    }
}

/// Microseconds since process start (first timestamp request).
pub fn now_micros() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A hand-advanced clock for tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance_micros(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }

    /// Advances the clock by (a possibly fractional number of) seconds.
    pub fn advance_secs(&self, secs: f64) {
        assert!(secs >= 0.0, "clocks are monotonic");
        self.advance_micros((secs * 1e6).round() as u64);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_exactly() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance_micros(250);
        c.advance_secs(0.001);
        assert_eq!(c.now_micros(), 1250);
    }
}
