//! # privim-obs
//!
//! Structured tracing, metrics, and run telemetry for the PrivIM stack.
//! Dependency-free (serde integration sits behind the default-on `serde`
//! feature and only adds derives), built around three primitives:
//!
//! * **Spans** — scoped wall-clock timers with nesting:
//!   `let _s = obs::span!("training");`. Durations always land in the
//!   `span.<name>` histogram; with a `Debug`-level sink installed each
//!   close also emits a `span` event.
//! * **Metrics** — process-global counters, gauges, and fixed-bucket
//!   histograms: `obs::counter("im.mc_trials").add(n)`. Snapshot with
//!   [`snapshot`]; metrics are always on (they are a handful of relaxed
//!   atomic ops) and never touch RNG streams.
//! * **Events** — typed key-value records dispatched to installed
//!   [`EventSink`]s: `obs::info!("train", "epoch", epoch = i, loss = l);`.
//!   With no sinks installed, [`enabled`] is a single relaxed atomic
//!   load and the event (and its field values) is never built.
//!
//! Sinks: [`StderrSink`] prints human-readable lines (configure via the
//! `PRIVIM_LOG` env var: `error|warn|info|debug|trace|off`), [`JsonlSink`]
//! appends one JSON object per event to a file; [`RunTelemetry::from_jsonl`]
//! turns that file back into a typed report.
//!
//! On top of the primitives sit the **profiler** (opt-in hierarchical
//! call-tree timer: [`set_profiling`], [`ProfScope`], [`profile_report`];
//! spans join the tree automatically while profiling is on) and the
//! **exporters** ([`render_prometheus`] text format and the
//! [`render_html_report`] self-contained run report).

mod clock;
mod event;
pub mod fault;
pub mod json;
mod level;
mod metrics;
mod profile;
mod prometheus;
pub mod recorder;
mod report_html;
mod sink;
mod span;
pub mod spanexport;
mod telemetry;
pub mod timeseries;
pub mod trace;
pub mod watch;

pub use clock::{now_micros, Clock, ManualClock, MonotonicClock};
pub use event::{Event, FieldValue};
pub use fault::{
    clear_fault_plan, fault_point, fault_point_file, faults_armed, set_fault_plan, FaultAction,
    FaultArm, FaultPlan, FaultSignal,
};
pub use level::Level;
pub use metrics::{
    global_registry, Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry,
    DEFAULT_BUCKETS,
};
pub use profile::{
    profile_report, profiling_enabled, reset_profile, set_profiling, ProfScope, ProfileReport,
    ProfileRow,
};
pub use prometheus::{
    label_value, render_prometheus, render_prometheus_with_profile, unescape_label_value,
};
pub use recorder::{DumpEntry, FlightRecorder};
pub use report_html::render_html_report;
pub use sink::{
    console, console_err, emit, enabled, flush_sinks, install_sink, take_sinks, EventSink,
    JsonlSink, MemorySink, StderrSink,
};
pub use span::SpanGuard;
pub use spanexport::{
    arm_span_export, arm_span_ring, disarm_span_export, export_span, exported_spans,
    hop_decomposition, parse_spans_jsonl, render_tier_traces, span_export_armed, spans_jsonl,
    HopRow, SpanRecord,
};
pub use telemetry::{EpochRecord, LedgerRecord, PhaseTiming, RunTelemetry};
pub use timeseries::{SeriesBoard, TimeSeries, TimeSeriesSnapshot};
pub use trace::{
    current_trace, parse_trace_header, with_trace, TraceContext, TraceGuard, TRACE_HEADER,
};
pub use watch::{AlertRule, AlertState, RuleKind, Watchdog};

/// The global counter named `name` (creating it on first use).
pub fn counter(name: &str) -> std::sync::Arc<Counter> {
    global_registry().counter(name)
}

/// The global gauge named `name` (creating it on first use).
pub fn gauge(name: &str) -> std::sync::Arc<Gauge> {
    global_registry().gauge(name)
}

/// The global histogram named `name` (creating it on first use, with
/// [`DEFAULT_BUCKETS`]).
pub fn histogram(name: &str) -> std::sync::Arc<Histogram> {
    global_registry().histogram(name)
}

/// A point-in-time snapshot of every global metric.
pub fn snapshot() -> MetricsSnapshot {
    global_registry().snapshot()
}

/// Builds and emits an event if some sink listens at `$level` **or**
/// the flight recorder is armed — field expressions are not evaluated
/// otherwise. Emitted events are stamped with the thread's active
/// [`TraceContext`], captured by the recorder, and then dispatched to
/// the (level-filtered) sinks.
///
/// ```
/// privim_obs::event!(privim_obs::Level::Info, "train", "epoch",
///                    epoch = 3u64, loss = 0.25);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $message:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level = $level;
        if $crate::enabled(level) || $crate::recorder::recorder_wants(level) {
            $crate::emit($crate::Event::new(
                level,
                $target,
                $message,
                vec![$((stringify!($key), $crate::FieldValue::from($value)),)*],
            ));
        }
    }};
}

/// [`event!`] at `Level::Error`.
#[macro_export]
macro_rules! error {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Error, $($tt)*) };
}

/// [`event!`] at `Level::Warn`.
#[macro_export]
macro_rules! warn {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Warn, $($tt)*) };
}

/// [`event!`] at `Level::Info`.
#[macro_export]
macro_rules! info {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Info, $($tt)*) };
}

/// [`event!`] at `Level::Debug`.
#[macro_export]
macro_rules! debug {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Debug, $($tt)*) };
}

/// [`event!`] at `Level::Trace`.
#[macro_export]
macro_rules! trace {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Trace, $($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn event_macro_skips_field_evaluation_when_disabled() {
        let _guard = crate::sink::global_sink_lock();
        take_sinks();
        let mut evaluated = false;
        crate::info!(
            "test",
            "msg",
            x = {
                evaluated = true;
                1u64
            }
        );
        assert!(
            !evaluated,
            "fields must not be built with no sink installed"
        );

        let sink = Arc::new(MemorySink::new(Level::Info));
        install_sink(sink.clone());
        crate::info!(
            "test",
            "msg",
            x = {
                evaluated = true;
                1u64
            }
        );
        take_sinks();
        assert!(evaluated);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].field("x"), Some(&FieldValue::U64(1)));
    }

    #[test]
    fn level_macros_tag_their_level() {
        let _guard = crate::sink::global_sink_lock();
        take_sinks();
        let sink = Arc::new(MemorySink::new(Level::Trace));
        install_sink(sink.clone());
        crate::error!("t", "e");
        crate::warn!("t", "w");
        crate::info!("t", "i");
        crate::debug!("t", "d");
        crate::trace!("t", "tr");
        take_sinks();
        let levels: Vec<Level> = sink.events().iter().map(|e| e.level).collect();
        assert_eq!(
            levels,
            vec![
                Level::Error,
                Level::Warn,
                Level::Info,
                Level::Debug,
                Level::Trace
            ]
        );
    }

    #[test]
    fn global_helpers_share_the_registry() {
        counter("lib_test_counter").add(2);
        gauge("lib_test_gauge").set(1.5);
        histogram("lib_test_hist").record(0.5);
        let snap = snapshot();
        assert_eq!(snap.counters.get("lib_test_counter"), Some(&2));
        assert_eq!(snap.gauges.get("lib_test_gauge"), Some(&1.5));
        assert_eq!(
            snap.histograms.get("lib_test_hist").map(|h| h.count),
            Some(1)
        );
    }
}
