//! Structured events: a severity, a target subsystem, a message, and
//! typed key-value fields.

use std::collections::BTreeMap;
use std::fmt;

use crate::clock::now_micros;
use crate::json::JsonValue;
use crate::level::Level;
use crate::trace::TraceContext;

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Absent / not applicable (e.g. σ of a non-private run).
    Null,
    /// A boolean flag.
    Bool(bool),
    /// An unsigned integer (counts, sizes, steps).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (losses, seconds, ε).
    F64(f64),
    /// A string (method names, phases).
    Str(String),
}

impl FieldValue {
    /// Converts to a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        match self {
            FieldValue::Null => JsonValue::Null,
            FieldValue::Bool(b) => JsonValue::Bool(*b),
            FieldValue::U64(n) => JsonValue::Num(*n as f64),
            FieldValue::I64(n) => JsonValue::Num(*n as f64),
            FieldValue::F64(n) => JsonValue::Num(*n),
            FieldValue::Str(s) => JsonValue::Str(s.clone()),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Null => f.write_str("-"),
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::U64(n) => write!(f, "{n}"),
            FieldValue::I64(n) => write!(f, "{n}"),
            FieldValue::F64(n) => write!(f, "{n:.6}"),
            FieldValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<Option<f64>> for FieldValue {
    fn from(v: Option<f64>) -> Self {
        v.map_or(FieldValue::Null, FieldValue::F64)
    }
}
impl From<Option<u64>> for FieldValue {
    fn from(v: Option<u64>) -> Self {
        v.map_or(FieldValue::Null, FieldValue::U64)
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since process start (monotonic).
    pub ts_micros: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (`"train"`, `"dp"`, `"span"`, …).
    pub target: &'static str,
    /// Event name or human message (`"epoch"`, `"epsilon"`, a span name).
    pub message: String,
    /// Typed payload.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// The trace context active on the emitting thread, if any.
    pub trace: Option<TraceContext>,
}

impl Event {
    /// A new event stamped with the process clock and the thread's
    /// active [`TraceContext`] (if one is entered).
    pub fn new(
        level: Level,
        target: &'static str,
        message: impl Into<String>,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Self {
        Event {
            ts_micros: now_micros(),
            level,
            target,
            message: message.into(),
            fields,
            trace: crate::trace::current_trace(),
        }
    }

    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = BTreeMap::new();
        for (k, v) in &self.fields {
            fields.insert((*k).to_string(), v.to_json_value());
        }
        let mut obj = BTreeMap::new();
        obj.insert("ts_us".to_string(), JsonValue::Num(self.ts_micros as f64));
        obj.insert(
            "level".to_string(),
            JsonValue::Str(self.level.as_str().to_string()),
        );
        obj.insert(
            "target".to_string(),
            JsonValue::Str(self.target.to_string()),
        );
        obj.insert("message".to_string(), JsonValue::Str(self.message.clone()));
        obj.insert("fields".to_string(), JsonValue::Obj(fields));
        if let Some(ctx) = self.trace {
            obj.insert("trace_id".to_string(), JsonValue::Str(ctx.trace_id_hex()));
            obj.insert("span_id".to_string(), JsonValue::Str(ctx.span_id_hex()));
            if let Some(parent) = ctx.parent_span_id {
                obj.insert(
                    "parent_span_id".to_string(),
                    JsonValue::Str(format!("{parent:016x}")),
                );
            }
        }
        JsonValue::Obj(obj).to_json()
    }

    /// Human-readable one-line rendering for the stderr sink.
    pub fn format_human(&self) -> String {
        let mut line = format!(
            "[{:>10.4}s {:<5} {}] {}",
            self.ts_micros as f64 / 1e6,
            self.level.as_str().to_ascii_uppercase(),
            self.target,
            self.message
        );
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        if let Some(ctx) = self.trace {
            // Short prefix only: enough to correlate by eye against the
            // full ids in the JSONL stream.
            line.push_str(&format!(" trace={:.8}", ctx.trace_id_hex()));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn field_conversions_cover_common_types() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i32), FieldValue::I64(-2));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(None::<f64>), FieldValue::Null);
        assert_eq!(FieldValue::from(Some(1.5)), FieldValue::F64(1.5));
    }

    #[test]
    fn json_line_parses_back() {
        let e = Event::new(
            crate::Level::Info,
            "train",
            "epoch",
            vec![
                ("epoch", FieldValue::U64(3)),
                ("loss", FieldValue::F64(0.25)),
            ],
        );
        let parsed = json::parse(&e.to_json_line()).unwrap();
        assert_eq!(parsed.get("target").unwrap().as_str(), Some("train"));
        assert_eq!(parsed.get("message").unwrap().as_str(), Some("epoch"));
        let fields = parsed.get("fields").unwrap();
        assert_eq!(fields.get("epoch").unwrap().as_u64(), Some(3));
        assert_eq!(fields.get("loss").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn events_are_stamped_with_the_active_trace() {
        let ctx = crate::trace::TraceContext::from_seed(3).child();
        let _g = ctx.enter();
        let e = Event::new(crate::Level::Info, "train", "epoch", Vec::new());
        assert_eq!(e.trace, Some(ctx));
        let parsed = json::parse(&e.to_json_line()).unwrap();
        assert_eq!(
            parsed.get("trace_id").unwrap().as_str(),
            Some(ctx.trace_id_hex().as_str())
        );
        assert_eq!(
            parsed.get("span_id").unwrap().as_str(),
            Some(ctx.span_id_hex().as_str())
        );
        assert_eq!(
            parsed.get("parent_span_id").unwrap().as_str(),
            Some(format!("{:016x}", ctx.parent_span_id.unwrap()).as_str())
        );
        let human = e.format_human();
        assert!(human.contains(" trace="), "{human}");
    }

    #[test]
    fn untraced_events_have_no_trace_keys() {
        let e = Event::new(crate::Level::Info, "train", "epoch", Vec::new());
        assert_eq!(e.trace, None);
        let parsed = json::parse(&e.to_json_line()).unwrap();
        assert!(parsed.get("trace_id").is_none());
        assert!(!e.format_human().contains("trace="));
    }

    #[test]
    fn human_format_contains_fields() {
        let e = Event::new(
            crate::Level::Warn,
            "dp",
            "epsilon",
            vec![("step", 4usize.into())],
        );
        let s = e.format_human();
        assert!(s.contains("WARN"), "{s}");
        assert!(s.contains("dp"), "{s}");
        assert!(s.contains("step=4"), "{s}");
    }
}
