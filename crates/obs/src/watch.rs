//! The watchdog: declarative alert rules over live time-series.
//!
//! A [`Watchdog`] owns a [`SeriesBoard`] and a set of [`AlertRule`]s.
//! Instrumented sites feed it `(metric, tick, value)` observations —
//! epoch numbers during training, request counts while serving — and
//! every observation deterministically re-evaluates the rules watching
//! that metric. Rule transitions are structured obs events (stamped
//! with the active trace like any other event), and the current
//! rule states are exported as `privim_alert_active{rule=…}` Prometheus
//! series and an Alerts section in the HTML report.
//!
//! The process-global instance follows the profiler's arming contract:
//! when disarmed, [`observe`] is one relaxed atomic load and an
//! immediate return, so always-on instrumentation sites cost nothing.
//! Evaluation never reads wall clocks or RNG, so a seeded run is
//! bit-identical with the watchdog armed — only the caller-provided
//! tick/value stream decides what fires.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::timeseries::{SeriesBoard, TimeSeries, TimeSeriesSnapshot};

/// Capacity of each watchdog series ring.
pub const WATCH_SERIES_CAPACITY: usize = 256;

/// What makes a rule breach.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Breaches while the observed value is beyond `limit`
    /// (`above = true` → breach when `value > limit`, else when
    /// `value < limit`).
    Threshold { limit: f64, above: bool },
    /// Breaches when the observed value deviates from the series'
    /// EWMA (as it stood *before* this observation) by more than
    /// `tolerance`, relative to the EWMA's magnitude.
    Drift { tolerance: f64 },
    /// Budget burn for a cumulative signal: breaches once the value
    /// reaches `warn_fraction · budget`; the alert detail carries the
    /// projected ticks-to-exhaustion from the windowed burn rate.
    BurnRate { budget: f64, warn_fraction: f64 },
}

/// One declarative rule: watch `metric`, breach per `kind`, fire after
/// `sustain` consecutive breaching observations.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Unique rule name (the `rule` label in exports).
    pub name: String,
    /// Series the rule watches.
    pub metric: String,
    /// Breach condition.
    pub kind: RuleKind,
    /// Consecutive breaching observations required before the alert
    /// activates (≥ 1; debounces flapping signals).
    pub sustain: u32,
}

impl AlertRule {
    /// A rule firing on the first breaching observation.
    pub fn new(name: &str, metric: &str, kind: RuleKind) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            kind,
            sustain: 1,
        }
    }

    /// Requires `sustain` consecutive breaches before firing.
    pub fn sustained(mut self, sustain: u32) -> AlertRule {
        assert!(sustain >= 1, "sustain must be at least 1");
        self.sustain = sustain;
        self
    }
}

/// Exported state of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertState {
    /// Rule name.
    pub rule: String,
    /// Watched metric.
    pub metric: String,
    /// True while firing.
    pub active: bool,
    /// Most recent observed value (NaN before the first observation).
    pub value: f64,
    /// Tick of the observation that activated the alert (0 if never
    /// activated).
    pub since_tick: u64,
    /// Human-readable breach description, stable across renders.
    pub detail: String,
}

struct RuleSlot {
    rule: AlertRule,
    breaching: u32,
    active: bool,
    value: f64,
    since_tick: u64,
    detail: String,
}

/// Rules plus the series they watch. Most callers use the process
/// global ([`arm`]/[`observe`]); tests can own one directly.
pub struct Watchdog {
    board: SeriesBoard,
    slots: Vec<RuleSlot>,
}

impl Watchdog {
    /// A watchdog evaluating `rules` over fresh series rings.
    pub fn new(rules: Vec<AlertRule>) -> Watchdog {
        let mut seen: Vec<&str> = Vec::new();
        for r in &rules {
            assert!(
                !seen.contains(&r.name.as_str()),
                "duplicate alert rule name {:?}",
                r.name
            );
            seen.push(&r.name);
        }
        Watchdog {
            board: SeriesBoard::new(WATCH_SERIES_CAPACITY),
            slots: rules
                .into_iter()
                .map(|rule| RuleSlot {
                    rule,
                    breaching: 0,
                    active: false,
                    value: f64::NAN,
                    since_tick: 0,
                    detail: String::new(),
                })
                .collect(),
        }
    }

    /// Feeds one observation and re-evaluates every rule watching
    /// `metric`. Returns the number of rule transitions (activations +
    /// resolutions) it caused.
    pub fn observe(&mut self, metric: &str, tick: u64, value: f64) -> usize {
        if !value.is_finite() {
            return 0;
        }
        // Drift compares against the EWMA as of *before* this point.
        let prior_ewma = self.board.with_series(metric, |s| s.ewma()).flatten();
        self.board.observe(metric, tick, value);
        let mut transitions = 0;
        for slot in self.slots.iter_mut().filter(|s| s.rule.metric == metric) {
            let (breach, detail) =
                evaluate(&slot.rule.kind, &self.board, metric, value, prior_ewma);
            slot.value = value;
            slot.breaching = if breach { slot.breaching + 1 } else { 0 };
            let fire = slot.breaching >= slot.rule.sustain;
            if fire {
                slot.detail = detail;
            }
            if fire && !slot.active {
                slot.active = true;
                slot.since_tick = tick;
                transitions += 1;
                crate::warn!(
                    "watch",
                    "alert",
                    rule = slot.rule.name.as_str(),
                    metric = metric,
                    tick = tick,
                    value = value,
                    detail = slot.detail.as_str(),
                );
            } else if !fire && slot.active {
                slot.active = false;
                transitions += 1;
                crate::info!(
                    "watch",
                    "alert_resolved",
                    rule = slot.rule.name.as_str(),
                    metric = metric,
                    tick = tick,
                    value = value,
                );
            }
        }
        transitions
    }

    /// Every rule's current state, sorted by rule name.
    pub fn alert_states(&self) -> Vec<AlertState> {
        let mut out: Vec<AlertState> = self
            .slots
            .iter()
            .map(|s| AlertState {
                rule: s.rule.name.clone(),
                metric: s.rule.metric.clone(),
                active: s.active,
                value: s.value,
                since_tick: s.since_tick,
                detail: s.detail.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.rule.cmp(&b.rule));
        out
    }

    /// Snapshot of every watched series, sorted by name.
    pub fn series(&self) -> Vec<(String, TimeSeriesSnapshot)> {
        self.board.snapshot()
    }
}

fn evaluate(
    kind: &RuleKind,
    board: &SeriesBoard,
    metric: &str,
    value: f64,
    prior_ewma: Option<f64>,
) -> (bool, String) {
    match kind {
        RuleKind::Threshold { limit, above } => {
            let breach = if *above {
                value > *limit
            } else {
                value < *limit
            };
            let dir = if *above { ">" } else { "<" };
            (breach, format!("value {value:.6} {dir} limit {limit:.6}"))
        }
        RuleKind::Drift { tolerance } => match prior_ewma {
            Some(ewma) => {
                let scale = ewma.abs().max(1e-12);
                let drift = (value - ewma).abs() / scale;
                (
                    drift > *tolerance,
                    format!("drift {drift:.6} vs ewma {ewma:.6} (tolerance {tolerance:.6})"),
                )
            }
            None => (false, String::new()),
        },
        RuleKind::BurnRate {
            budget,
            warn_fraction,
        } => {
            let breach = value >= warn_fraction * budget;
            let left = (budget - value).max(0.0);
            let ticks_left = board
                .with_series(metric, |s: &TimeSeries| s.rate(WATCH_SERIES_CAPACITY))
                .flatten()
                .filter(|r| *r > 0.0)
                .map(|r| left / r);
            let projection = match ticks_left {
                Some(t) => format!("projected exhaustion in {t:.1} ticks"),
                None => "burn rate unknown".to_string(),
            };
            (
                breach,
                format!(
                    "spent {value:.6} of budget {budget:.6} (warn at {:.6}); {projection}",
                    warn_fraction * budget
                ),
            )
        }
    }
}

static WATCH_ARMED: AtomicBool = AtomicBool::new(false);
static WATCHDOG: Mutex<Option<Watchdog>> = Mutex::new(None);

/// Installs `rules` as the process watchdog and arms it.
pub fn arm(rules: Vec<AlertRule>) {
    let dog = Watchdog::new(rules);
    *WATCHDOG.lock().unwrap_or_else(|e| e.into_inner()) = Some(dog);
    WATCH_ARMED.store(true, Ordering::Relaxed);
}

/// Disarms and drops the process watchdog.
pub fn disarm() {
    WATCH_ARMED.store(false, Ordering::Relaxed);
    *WATCHDOG.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// True while the process watchdog is armed. One relaxed load — the
/// whole cost of a disabled [`observe`] site.
#[inline]
pub fn watch_enabled() -> bool {
    WATCH_ARMED.load(Ordering::Relaxed)
}

/// Feeds the process watchdog, if armed. Disarmed cost: one relaxed
/// atomic load.
pub fn observe(metric: &str, tick: u64, value: f64) {
    if !WATCH_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let mut guard = WATCHDOG.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(dog) = guard.as_mut() {
        dog.observe(metric, tick, value);
    }
}

/// Every rule state of the process watchdog (empty when disarmed),
/// sorted by rule name. Read by the Prometheus exporter
/// (`privim_alert_active{rule=…}`) and the HTML report.
pub fn alert_states() -> Vec<AlertState> {
    let guard = WATCHDOG.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|d| d.alert_states()).unwrap_or_default()
}

/// Currently firing alerts of the process watchdog.
pub fn active_alerts() -> Vec<AlertState> {
    alert_states().into_iter().filter(|a| a.active).collect()
}

/// Snapshot of the process watchdog's series (empty when disarmed).
pub fn watch_series() -> Vec<(String, TimeSeriesSnapshot)> {
    let guard = WATCHDOG.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|d| d.series()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states(dog: &Watchdog) -> Vec<(String, bool)> {
        dog.alert_states()
            .into_iter()
            .map(|a| (a.rule, a.active))
            .collect()
    }

    #[test]
    fn threshold_rule_fires_and_resolves() {
        let mut dog = Watchdog::new(vec![AlertRule::new(
            "high_loss",
            "train.loss",
            RuleKind::Threshold {
                limit: 1.0,
                above: true,
            },
        )]);
        assert_eq!(dog.observe("train.loss", 0, 0.5), 0);
        assert_eq!(states(&dog), vec![("high_loss".to_string(), false)]);
        assert_eq!(dog.observe("train.loss", 1, 1.5), 1, "activation");
        assert!(dog.alert_states()[0].active);
        assert_eq!(dog.alert_states()[0].since_tick, 1);
        assert!(dog.alert_states()[0].detail.contains("limit 1.0"));
        assert_eq!(dog.observe("train.loss", 2, 1.7), 0, "still active");
        assert_eq!(dog.observe("train.loss", 3, 0.9), 1, "resolution");
        assert!(!dog.alert_states()[0].active);
    }

    #[test]
    fn sustain_debounces_single_spikes() {
        let mut dog = Watchdog::new(vec![AlertRule::new(
            "spiky",
            "m",
            RuleKind::Threshold {
                limit: 10.0,
                above: true,
            },
        )
        .sustained(3)]);
        dog.observe("m", 0, 11.0);
        dog.observe("m", 1, 12.0);
        assert!(!dog.alert_states()[0].active, "two breaches < sustain 3");
        dog.observe("m", 2, 5.0);
        dog.observe("m", 3, 11.0);
        dog.observe("m", 4, 11.0);
        assert!(!dog.alert_states()[0].active, "reset on recovery");
        dog.observe("m", 5, 11.0);
        assert!(dog.alert_states()[0].active, "three in a row fires");
    }

    #[test]
    fn drift_rule_compares_against_prior_ewma() {
        let mut dog = Watchdog::new(vec![AlertRule::new(
            "loss_drift",
            "loss",
            RuleKind::Drift { tolerance: 0.5 },
        )]);
        // First point: no prior EWMA, cannot drift.
        assert_eq!(dog.observe("loss", 0, 1.0), 0);
        // Within 50% of EWMA(=1.0): fine.
        assert_eq!(dog.observe("loss", 1, 1.3), 0);
        // Far beyond the smoothed level: fires.
        assert_eq!(dog.observe("loss", 2, 5.0), 1);
        assert!(dog.alert_states()[0].active);
    }

    #[test]
    fn burn_rate_rule_projects_exhaustion() {
        let mut dog = Watchdog::new(vec![AlertRule::new(
            "eps_budget",
            "dp.epsilon",
            RuleKind::BurnRate {
                budget: 4.0,
                warn_fraction: 0.5,
            },
        )]);
        dog.observe("dp.epsilon", 1, 1.0);
        assert!(!dog.alert_states()[0].active);
        dog.observe("dp.epsilon", 2, 2.1);
        let a = &dog.alert_states()[0];
        assert!(a.active, "2.1 >= 0.5 * 4.0");
        // Burn rate ≈ 1.1/tick, 1.9 left → ≈ 1.7 ticks.
        assert!(
            a.detail.contains("projected exhaustion in 1.7 ticks"),
            "{}",
            a.detail
        );
    }

    #[test]
    fn observations_only_touch_matching_rules() {
        let mut dog = Watchdog::new(vec![
            AlertRule::new(
                "a",
                "x",
                RuleKind::Threshold {
                    limit: 0.0,
                    above: true,
                },
            ),
            AlertRule::new(
                "b",
                "y",
                RuleKind::Threshold {
                    limit: 0.0,
                    above: true,
                },
            ),
        ]);
        assert_eq!(dog.observe("x", 0, 1.0), 1);
        assert_eq!(
            states(&dog),
            vec![("a".to_string(), true), ("b".to_string(), false)]
        );
        assert_eq!(dog.observe("unwatched", 0, 99.0), 0);
        assert_eq!(dog.series().len(), 2, "unmatched metrics are still kept");
    }

    #[test]
    #[should_panic(expected = "duplicate alert rule name")]
    fn duplicate_rule_names_are_rejected() {
        Watchdog::new(vec![
            AlertRule::new("dup", "x", RuleKind::Drift { tolerance: 1.0 }),
            AlertRule::new("dup", "y", RuleKind::Drift { tolerance: 1.0 }),
        ]);
    }
}
