//! Prometheus text-format (version 0.0.4) exporter.
//!
//! Renders a [`MetricsSnapshot`] — and optionally a [`ProfileReport`] —
//! as the plain-text exposition format Prometheus scrapes, so a run's
//! metrics file can be dropped behind any static file server or pushed
//! through the pushgateway without extra tooling. All series are
//! prefixed `privim_`; histogram summaries export as Prometheus
//! `summary` series with `quantile` labels plus `_sum`/`_count`,
//! profile rows as `privim_profile_*{scope="a;b;c"}` series.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::profile::ProfileReport;

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_` and
/// prefixes `privim_`, producing a valid Prometheus metric name.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("privim_");
    for c in name.chars() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and line feed become `\\`, `\"`, and `\n`.
pub fn label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverts [`label_value`]: decodes the three exposition-format escapes.
/// Unknown escape sequences keep the backslash verbatim (matching how
/// Prometheus itself tolerates them), so decoding never fails.
pub fn unescape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn write_sample(out: &mut String, name: &str, labels: &str, value: f64) {
    if value.is_finite() {
        let _ = writeln!(out, "{name}{labels} {value}");
    } else {
        // The format spec spells non-finite values like this:
        let rendered = if value.is_nan() {
            "NaN"
        } else if value > 0.0 {
            "+Inf"
        } else {
            "-Inf"
        };
        let _ = writeln!(out, "{name}{labels} {rendered}");
    }
}

/// Renders `snapshot` in Prometheus text format.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    render_prometheus_with_profile(snapshot, &ProfileReport::default())
}

/// Renders `snapshot` plus the call-tree `profile` in Prometheus text
/// format (an empty profile adds no series).
pub fn render_prometheus_with_profile(
    snapshot: &MetricsSnapshot,
    profile: &ProfileReport,
) -> String {
    let mut out = String::new();
    // Exemplar-style correlation label: when a run-scoped trace is set,
    // export it as an info series so a scrape can be joined against the
    // JSONL event stream and the flight-recorder dump by trace id.
    if let Some(run) = crate::trace::run_trace() {
        let _ = writeln!(out, "# TYPE privim_trace_info gauge");
        let _ = writeln!(
            out,
            "privim_trace_info{{trace_id=\"{}\"}} 1",
            label_value(&run.trace_id_hex())
        );
    }
    // Watchdog rule states: one series per registered rule (armed
    // processes only), 1 while firing so dashboards can alert on
    // `privim_alert_active > 0`.
    let alerts = crate::watch::alert_states();
    if !alerts.is_empty() {
        let _ = writeln!(out, "# TYPE privim_alert_active gauge");
        for alert in &alerts {
            let _ = writeln!(
                out,
                "privim_alert_active{{rule=\"{}\",metric=\"{}\"}} {}",
                label_value(&alert.rule),
                label_value(&alert.metric),
                u8::from(alert.active)
            );
        }
    }
    for (name, value) in &snapshot.counters {
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        write_sample(&mut out, &name, "", *value as f64);
    }
    for (name, value) in &snapshot.gauges {
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        write_sample(&mut out, &name, "", *value);
    }
    let mut hop_type_written = false;
    for (name, h) in &snapshot.histograms {
        // Router per-hop latencies export as one labeled family,
        // `privim_router_hop_seconds{hop="..."}`, so a dashboard can
        // stack the tier's latency decomposition without enumerating
        // per-hop metric names. (The snapshot map is sorted, so the
        // `router.hop.*` keys — and their samples — stay contiguous.)
        if let Some(hop) = name.strip_prefix("router.hop.") {
            if !hop_type_written {
                let _ = writeln!(out, "# TYPE privim_router_hop_seconds summary");
                hop_type_written = true;
            }
            let hop = label_value(hop);
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                write_sample(
                    &mut out,
                    "privim_router_hop_seconds",
                    &format!("{{hop=\"{hop}\",quantile=\"{q}\"}}"),
                    v,
                );
            }
            write_sample(
                &mut out,
                "privim_router_hop_seconds_sum",
                &format!("{{hop=\"{hop}\"}}"),
                h.sum,
            );
            write_sample(
                &mut out,
                "privim_router_hop_seconds_count",
                &format!("{{hop=\"{hop}\"}}"),
                h.count as f64,
            );
            continue;
        }
        let name = metric_name(name);
        let _ = writeln!(out, "# TYPE {name} summary");
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            write_sample(&mut out, &name, &format!("{{quantile=\"{q}\"}}"), v);
        }
        write_sample(&mut out, &format!("{name}_sum"), "", h.sum);
        write_sample(&mut out, &format!("{name}_count"), "", h.count as f64);
        let _ = writeln!(out, "# TYPE {name}_min gauge");
        write_sample(&mut out, &format!("{name}_min"), "", h.min);
        let _ = writeln!(out, "# TYPE {name}_max gauge");
        write_sample(&mut out, &format!("{name}_max"), "", h.max);
    }
    if !profile.is_empty() {
        let _ = writeln!(out, "# TYPE privim_profile_total_seconds gauge");
        let _ = writeln!(out, "# TYPE privim_profile_self_seconds gauge");
        let _ = writeln!(out, "# TYPE privim_profile_calls counter");
        for row in &profile.rows {
            let labels = format!("{{scope=\"{}\"}}", label_value(&row.path));
            write_sample(
                &mut out,
                "privim_profile_total_seconds",
                &labels,
                row.total_secs(),
            );
            write_sample(
                &mut out,
                "privim_profile_self_seconds",
                &labels,
                row.self_secs(),
            );
            write_sample(&mut out, "privim_profile_calls", &labels, row.calls as f64);
        }
        // Per-kernel work counters (only for instrumented scopes), so a
        // scrape can derive GFLOP/s / GB/s / arithmetic-intensity via
        // rate() without re-deriving the work formulas.
        if profile.rows.iter().any(|r| r.has_work()) {
            let _ = writeln!(out, "# TYPE privim_kernel_flops_total counter");
            let _ = writeln!(out, "# TYPE privim_kernel_bytes_total counter");
            let _ = writeln!(out, "# TYPE privim_kernel_items_total counter");
            for row in profile.rows.iter().filter(|r| r.has_work()) {
                let labels = format!("{{scope=\"{}\"}}", label_value(&row.path));
                write_sample(
                    &mut out,
                    "privim_kernel_flops_total",
                    &labels,
                    row.flops as f64,
                );
                write_sample(
                    &mut out,
                    "privim_kernel_bytes_total",
                    &labels,
                    row.bytes as f64,
                );
                write_sample(
                    &mut out,
                    "privim_kernel_items_total",
                    &labels,
                    row.items as f64,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSummary, Registry};
    use crate::profile::ProfileRow;

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let r = Registry::new();
        r.counter("train.iterations").add(6);
        r.gauge("dp.sigma").set(3.25);
        r.histogram("span.training").record(0.5);
        r.histogram("span.training").record(1.5);
        let text = render_prometheus(&r.snapshot());
        assert!(
            text.contains("# TYPE privim_train_iterations counter\n"),
            "{text}"
        );
        assert!(text.contains("privim_train_iterations 6\n"), "{text}");
        assert!(text.contains("privim_dp_sigma 3.25\n"), "{text}");
        assert!(
            text.contains("# TYPE privim_span_training summary\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_span_training{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("privim_span_training_sum 2\n"), "{text}");
        assert!(text.contains("privim_span_training_count 2\n"), "{text}");
        assert!(text.contains("privim_span_training_min 0.5\n"), "{text}");
        assert!(text.contains("privim_span_training_max 1.5\n"), "{text}");
    }

    #[test]
    fn profile_rows_become_labeled_series() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot
            .histograms
            .insert("h".into(), HistogramSummary::default());
        let profile = ProfileReport {
            rows: vec![ProfileRow {
                name: "nn.matmul".into(),
                path: "training;nn.matmul".into(),
                depth: 1,
                calls: 12,
                total_micros: 2_500_000,
                self_micros: 2_000_000,
                flops: 0,
                bytes: 0,
                items: 0,
            }],
        };
        let text = render_prometheus_with_profile(&snapshot, &profile);
        assert!(
            text.contains("privim_profile_total_seconds{scope=\"training;nn.matmul\"} 2.5\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_profile_self_seconds{scope=\"training;nn.matmul\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_profile_calls{scope=\"training;nn.matmul\"} 12\n"),
            "{text}"
        );
        assert!(
            !text.contains("privim_kernel_flops_total"),
            "no kernel series without work counts: {text}"
        );
    }

    #[test]
    fn work_counters_export_kernel_series() {
        let profile = ProfileReport {
            rows: vec![
                ProfileRow {
                    name: "nn.matmul".into(),
                    path: "training;nn.matmul".into(),
                    depth: 1,
                    calls: 3,
                    total_micros: 1_000_000,
                    self_micros: 1_000_000,
                    flops: 2_000_000,
                    bytes: 500_000,
                    items: 3,
                },
                ProfileRow {
                    name: "idle".into(),
                    path: "idle".into(),
                    depth: 0,
                    calls: 1,
                    total_micros: 10,
                    self_micros: 10,
                    flops: 0,
                    bytes: 0,
                    items: 0,
                },
            ],
        };
        let text = render_prometheus_with_profile(&MetricsSnapshot::default(), &profile);
        assert!(
            text.contains("privim_kernel_flops_total{scope=\"training;nn.matmul\"} 2000000\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_kernel_bytes_total{scope=\"training;nn.matmul\"} 500000\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_kernel_items_total{scope=\"training;nn.matmul\"} 3\n"),
            "{text}"
        );
        assert!(
            !text.contains("privim_kernel_flops_total{scope=\"idle\"}"),
            "uninstrumented scopes export no kernel series: {text}"
        );
    }

    #[test]
    fn router_hop_histograms_export_as_one_labeled_family() {
        let r = Registry::new();
        r.histogram("router.hop.queue_wait").record(0.002);
        r.histogram("router.hop.upstream").record(0.25);
        r.histogram("router.hop.upstream").record(0.75);
        r.histogram("span.other").record(1.0);
        let text = render_prometheus(&r.snapshot());
        assert!(
            text.contains("# TYPE privim_router_hop_seconds summary\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_router_hop_seconds{hop=\"queue_wait\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("privim_router_hop_seconds_sum{hop=\"upstream\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_router_hop_seconds_count{hop=\"upstream\"} 2\n"),
            "{text}"
        );
        assert!(
            !text.contains("privim_router_hop_queue_wait"),
            "hop histograms must not also export generic summaries: {text}"
        );
        assert!(
            text.contains("# TYPE privim_span_other summary\n"),
            "other histograms keep the generic path: {text}"
        );
        let type_lines = text
            .matches("# TYPE privim_router_hop_seconds summary")
            .count();
        assert_eq!(type_lines, 1, "one TYPE line for the family");
    }

    #[test]
    fn names_and_labels_are_escaped() {
        assert_eq!(metric_name("span.a-b/c"), "privim_span_a_b_c");
        assert_eq!(label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn label_values_round_trip_through_escaping() {
        let hostile = [
            "",
            "plain",
            "a\"b\\c\nd",
            "\\",
            "\\\\",
            "\"\"",
            "\n\n\n",
            "trailing backslash \\",
            "\\n is a literal backslash-n once escaped",
            "unicode é→∞ stays verbatim",
            "mix\\\"of\nall\\nthree",
        ];
        for original in hostile {
            let escaped = label_value(original);
            assert!(
                !escaped.contains('\n'),
                "escaped value must be single-line: {escaped:?}"
            );
            assert_eq!(
                unescape_label_value(&escaped),
                original,
                "round trip failed for {original:?}"
            );
        }
        // Lenient decoding: unknown escapes survive verbatim.
        assert_eq!(unescape_label_value("\\t\\"), "\\t\\");
    }

    #[test]
    fn run_trace_exports_an_info_series() {
        // RUN_TRACE is process-global; serialize with the trace tests.
        let _guard = crate::sink::global_sink_lock();
        let ctx = crate::trace::TraceContext::from_seed(77);
        crate::trace::set_run_trace(ctx);
        let text = render_prometheus(&MetricsSnapshot::default());
        crate::trace::clear_run_trace();
        assert!(text.contains("# TYPE privim_trace_info gauge\n"), "{text}");
        assert!(
            text.contains(&format!(
                "privim_trace_info{{trace_id=\"{}\"}} 1\n",
                ctx.trace_id_hex()
            )),
            "{text}"
        );
        let after = render_prometheus(&MetricsSnapshot::default());
        assert!(
            !after.contains("privim_trace_info"),
            "no series once cleared"
        );
    }

    #[test]
    fn armed_watchdog_exports_alert_series() {
        // The watchdog is process-global; serialize with the sink lock.
        let _guard = crate::sink::global_sink_lock();
        crate::watch::arm(vec![
            crate::watch::AlertRule::new(
                "hot",
                "m",
                crate::watch::RuleKind::Threshold {
                    limit: 1.0,
                    above: true,
                },
            ),
            crate::watch::AlertRule::new(
                "cold",
                "m",
                crate::watch::RuleKind::Threshold {
                    limit: -1.0,
                    above: false,
                },
            ),
        ]);
        crate::watch::observe("m", 1, 2.0);
        let text = render_prometheus(&MetricsSnapshot::default());
        crate::watch::disarm();
        assert!(
            text.contains("# TYPE privim_alert_active gauge\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_alert_active{rule=\"hot\",metric=\"m\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("privim_alert_active{rule=\"cold\",metric=\"m\"} 0\n"),
            "{text}"
        );
        let after = render_prometheus(&MetricsSnapshot::default());
        assert!(
            !after.contains("privim_alert_active"),
            "no series once disarmed"
        );
    }
}
