//! Opt-in hierarchical scoped profiler.
//!
//! A process-global call-tree profiler built for hot kernels: when
//! profiling is off (the default), [`ProfScope::enter`] is a single
//! relaxed atomic load — no clock read, no allocation, no lock — so
//! instrumented kernels cost nothing in production runs. When enabled
//! via [`set_profiling`], every scope records into a per-thread tree
//! (find-or-create child by name, so steady-state bookkeeping is an
//! uncontended mutex plus a few integer adds), and [`profile_report`]
//! merges all thread trees into a [`ProfileReport`] with per-node
//! call counts, total (inclusive) and self (exclusive) time.
//!
//! Reports render two ways: [`ProfileReport::render_table`] (sorted,
//! indented text table) and [`ProfileReport::render_flamegraph`]
//! (folded-stack lines `a;b;c <self_micros>`, the format consumed by
//! `flamegraph.pl` and speedscope).
//!
//! [`SpanGuard`](crate::SpanGuard)s participate automatically: while
//! profiling is enabled every span also opens a profiler scope, so
//! coarse phases (`pipeline`, `training`, …) appear as ancestors of the
//! fine-grained kernel scopes without any extra wiring.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::clock::{Clock, MonotonicClock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the profiler on or off process-wide. Off by default.
pub fn set_profiling(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether profiling is currently enabled (one relaxed atomic load).
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Work performed inside a scope: floating-point operations, bytes
/// moved to/from memory, and a kernel-defined item count (edges
/// processed, Monte-Carlo trials, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WorkCounts {
    pub flops: u64,
    pub bytes: u64,
    pub items: u64,
}

#[derive(Debug)]
struct NodeStat {
    name: &'static str,
    parent: usize,
    children: Vec<usize>,
    calls: u64,
    total_micros: u64,
    /// Time attributed to direct children (for self = total − child).
    child_micros: u64,
    work: WorkCounts,
}

impl NodeStat {
    fn new(name: &'static str, parent: usize) -> NodeStat {
        NodeStat {
            name,
            parent,
            children: Vec::new(),
            calls: 0,
            total_micros: 0,
            child_micros: 0,
            work: WorkCounts::default(),
        }
    }
}

/// One thread's call tree. Node 0 is a synthetic root that only exists
/// to anchor top-level scopes; it never accumulates calls of its own.
#[derive(Debug)]
struct ThreadTree {
    nodes: Vec<NodeStat>,
    /// Indices of the currently open scopes, outermost first.
    stack: Vec<usize>,
}

impl ThreadTree {
    fn new() -> ThreadTree {
        ThreadTree {
            nodes: vec![NodeStat::new("", 0)],
            stack: Vec::new(),
        }
    }

    fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().copied().unwrap_or(0);
        let idx = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name)
            .unwrap_or_else(|| {
                let idx = self.nodes.len();
                self.nodes.push(NodeStat::new(name, parent));
                self.nodes[parent].children.push(idx);
                idx
            });
        self.stack.push(idx);
    }

    fn exit(&mut self, elapsed_micros: u64, work: WorkCounts) {
        // Tolerate exits without a matching enter (profiling toggled
        // mid-scope): the sample is simply dropped.
        let Some(idx) = self.stack.pop() else { return };
        self.nodes[idx].calls += 1;
        self.nodes[idx].total_micros += elapsed_micros;
        self.nodes[idx].work.flops += work.flops;
        self.nodes[idx].work.bytes += work.bytes;
        self.nodes[idx].work.items += work.items;
        let parent = self.nodes[idx].parent;
        self.nodes[parent].child_micros += elapsed_micros;
    }

    fn reset(&mut self) {
        // Zero in place: keeps the structure (and any open stacks on
        // live threads) valid.
        for n in &mut self.nodes {
            n.calls = 0;
            n.total_micros = 0;
            n.child_micros = 0;
            n.work = WorkCounts::default();
        }
    }
}

fn trees() -> &'static Mutex<Vec<Arc<Mutex<ThreadTree>>>> {
    static TREES: OnceLock<Mutex<Vec<Arc<Mutex<ThreadTree>>>>> = OnceLock::new();
    TREES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Mutex<ThreadTree>> = {
        let tree = Arc::new(Mutex::new(ThreadTree::new()));
        trees().lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&tree));
        tree
    };
}

/// Opens a profiler scope on this thread if profiling is enabled.
/// Returns whether the scope was actually opened (the caller must pair
/// a `true` return with exactly one [`scope_exit`]).
pub(crate) fn scope_enter(name: &'static str) -> bool {
    if !profiling_enabled() {
        return false;
    }
    LOCAL.with(|t| t.lock().unwrap_or_else(PoisonError::into_inner).enter(name));
    true
}

/// Closes the innermost open profiler scope on this thread, attributing
/// `elapsed_micros` (and any accumulated work counts) to it.
pub(crate) fn scope_exit(elapsed_micros: u64, work: WorkCounts) {
    LOCAL.with(|t| {
        t.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .exit(elapsed_micros, work)
    });
}

/// A profiled scope; attributes its wall time — and any work recorded
/// via [`ProfScope::add_work`] — to the call tree when dropped. Inert
/// (one atomic load, no clock read) while profiling is disabled;
/// `add_work` on a non-entered scope reads a plain bool and returns.
pub struct ProfScope<'c> {
    clock: &'c dyn Clock,
    start_micros: u64,
    entered: bool,
    flops: Cell<u64>,
    bytes: Cell<u64>,
    items: Cell<u64>,
}

impl ProfScope<'_> {
    /// Opens a scope timed by the process monotonic clock.
    pub fn enter(name: &'static str) -> ProfScope<'static> {
        static CLOCK: MonotonicClock = MonotonicClock;
        ProfScope::enter_with_clock(name, &CLOCK)
    }

    /// Opens a scope timed by an explicit clock (tests inject a
    /// [`crate::ManualClock`] here).
    pub fn enter_with_clock<'c>(name: &'static str, clock: &'c dyn Clock) -> ProfScope<'c> {
        let entered = scope_enter(name);
        let start_micros = if entered { clock.now_micros() } else { 0 };
        ProfScope {
            clock,
            start_micros,
            entered,
            flops: Cell::new(0),
            bytes: Cell::new(0),
            items: Cell::new(0),
        }
    }

    /// Records work performed inside this scope: floating-point
    /// operations, bytes moved, and a kernel-defined item count (edges,
    /// Monte-Carlo trials, gradient entries, …). Accumulates locally
    /// and lands in the call tree when the scope drops, so the profiler
    /// can derive GFLOP/s, GB/s, and arithmetic intensity per node.
    /// Free when the scope was not entered: no atomics, no lock.
    pub fn add_work(&self, flops: u64, bytes: u64, items: u64) {
        if self.entered {
            self.flops.set(self.flops.get().wrapping_add(flops));
            self.bytes.set(self.bytes.get().wrapping_add(bytes));
            self.items.set(self.items.get().wrapping_add(items));
        }
    }
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        if self.entered {
            scope_exit(
                self.clock.now_micros().saturating_sub(self.start_micros),
                WorkCounts {
                    flops: self.flops.get(),
                    bytes: self.bytes.get(),
                    items: self.items.get(),
                },
            );
        }
    }
}

/// Opens a [`ProfScope`] named by a string literal; bind it to keep the
/// scope open: `let _p = privim_obs::prof_scope!("nn.matmul");`.
#[macro_export]
macro_rules! prof_scope {
    ($name:expr) => {
        $crate::ProfScope::enter($name)
    };
}

/// Zeroes all accumulated profile statistics (every thread, in place).
/// Scopes currently open keep timing and land in the fresh stats.
pub fn reset_profile() {
    let trees = trees().lock().unwrap_or_else(PoisonError::into_inner);
    for tree in trees.iter() {
        tree.lock().unwrap_or_else(PoisonError::into_inner).reset();
    }
}

/// One merged call-tree node, in depth-first pre-order within
/// [`ProfileReport::rows`] (siblings sorted by total time, descending).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfileRow {
    /// Scope name (last path component).
    pub name: String,
    /// Semicolon-joined ancestor path, e.g. `training;nn.matmul`.
    pub path: String,
    /// Nesting depth (0 = top-level scope).
    pub depth: usize,
    /// Completed invocations.
    pub calls: u64,
    /// Inclusive wall time (scope + descendants), microseconds.
    pub total_micros: u64,
    /// Exclusive wall time (scope minus direct children), microseconds.
    pub self_micros: u64,
    /// Floating-point operations recorded via [`ProfScope::add_work`]
    /// on this exact scope (children's work is not rolled up).
    #[cfg_attr(feature = "serde", serde(default))]
    pub flops: u64,
    /// Bytes moved to/from memory recorded via `add_work`.
    #[cfg_attr(feature = "serde", serde(default))]
    pub bytes: u64,
    /// Kernel-defined item count (edges, trials, gradient entries, …)
    /// recorded via `add_work`.
    #[cfg_attr(feature = "serde", serde(default))]
    pub items: u64,
}

impl ProfileRow {
    /// Inclusive wall time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_micros as f64 / 1e6
    }

    /// Exclusive wall time in seconds.
    pub fn self_secs(&self) -> f64 {
        self.self_micros as f64 / 1e6
    }

    /// True when any work counter is nonzero.
    pub fn has_work(&self) -> bool {
        self.flops > 0 || self.bytes > 0 || self.items > 0
    }

    /// Achieved compute throughput in GFLOP/s over the scope's
    /// inclusive time (`None` without both flops and elapsed time).
    pub fn gflops_per_sec(&self) -> Option<f64> {
        if self.flops > 0 && self.total_micros > 0 {
            Some(self.flops as f64 / 1e3 / self.total_micros as f64)
        } else {
            None
        }
    }

    /// Achieved memory bandwidth in GB/s over the scope's inclusive
    /// time (`None` without both bytes and elapsed time).
    pub fn gbytes_per_sec(&self) -> Option<f64> {
        if self.bytes > 0 && self.total_micros > 0 {
            Some(self.bytes as f64 / 1e3 / self.total_micros as f64)
        } else {
            None
        }
    }

    /// Arithmetic intensity in FLOP/byte — the x-axis of a roofline
    /// plot. Low values (≲ machine balance, a few FLOP/byte on
    /// commodity CPUs) mean the kernel is memory-bound; high values
    /// mean it is compute-bound. `None` when either counter is zero.
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        if self.flops > 0 && self.bytes > 0 {
            Some(self.flops as f64 / self.bytes as f64)
        } else {
            None
        }
    }
}

/// The merged call tree of every thread, flattened depth-first.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfileReport {
    pub rows: Vec<ProfileRow>,
}

struct Merged {
    name: String,
    calls: u64,
    total_micros: u64,
    child_micros: u64,
    work: WorkCounts,
    children: Vec<Merged>,
}

fn merge_node(into: &mut Vec<Merged>, tree: &ThreadTree, idx: usize) {
    let node = &tree.nodes[idx];
    let pos = into
        .iter()
        .position(|m| m.name == node.name)
        .unwrap_or_else(|| {
            into.push(Merged {
                name: node.name.to_string(),
                calls: 0,
                total_micros: 0,
                child_micros: 0,
                work: WorkCounts::default(),
                children: Vec::new(),
            });
            into.len() - 1
        });
    into[pos].calls += node.calls;
    into[pos].total_micros += node.total_micros;
    into[pos].child_micros += node.child_micros;
    into[pos].work.flops += node.work.flops;
    into[pos].work.bytes += node.work.bytes;
    into[pos].work.items += node.work.items;
    for &child in &node.children {
        merge_node(&mut into[pos].children, tree, child);
    }
}

fn has_calls(n: &Merged) -> bool {
    n.calls > 0 || n.children.iter().any(has_calls)
}

fn flatten(nodes: &mut [Merged], prefix: &str, depth: usize, rows: &mut Vec<ProfileRow>) {
    nodes.sort_by(|a, b| {
        b.total_micros
            .cmp(&a.total_micros)
            .then_with(|| a.name.cmp(&b.name))
    });
    for n in nodes.iter_mut() {
        if !has_calls(n) {
            continue;
        }
        let path = if prefix.is_empty() {
            n.name.clone()
        } else {
            format!("{prefix};{}", n.name)
        };
        rows.push(ProfileRow {
            name: n.name.clone(),
            path: path.clone(),
            depth,
            calls: n.calls,
            total_micros: n.total_micros,
            self_micros: n.total_micros.saturating_sub(n.child_micros),
            flops: n.work.flops,
            bytes: n.work.bytes,
            items: n.work.items,
        });
        flatten(&mut n.children, &path, depth + 1, rows);
    }
}

/// Merges every thread's call tree into a single [`ProfileReport`].
/// Cheap enough to call at any time; open scopes simply haven't
/// contributed their in-flight invocation yet.
pub fn profile_report() -> ProfileReport {
    let mut roots: Vec<Merged> = Vec::new();
    {
        let trees = trees().lock().unwrap_or_else(PoisonError::into_inner);
        for tree in trees.iter() {
            let tree = tree.lock().unwrap_or_else(PoisonError::into_inner);
            for &child in &tree.nodes[0].children {
                merge_node(&mut roots, &tree, child);
            }
        }
    }
    let mut rows = Vec::new();
    flatten(&mut roots, "", 0, &mut rows);
    ProfileReport { rows }
}

impl ProfileReport {
    /// True when no scope has completed since the last reset.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sum of top-level inclusive times, in seconds.
    pub fn total_secs(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.depth == 0)
            .map(ProfileRow::total_secs)
            .sum()
    }

    /// The row for `path` (semicolon-joined), if present.
    pub fn row(&self, path: &str) -> Option<&ProfileRow> {
        self.rows.iter().find(|r| r.path == path)
    }

    /// Renders the call tree as an indented text table sorted by total
    /// time within each level. Scopes instrumented with
    /// [`ProfScope::add_work`] additionally report achieved GFLOP/s,
    /// GB/s, and arithmetic intensity (FLOP/byte, the roofline x-axis);
    /// uninstrumented scopes show `-`.
    pub fn render_table(&self) -> String {
        fn rate(v: Option<f64>) -> String {
            match v {
                Some(v) => format!("{v:>8.2}"),
                None => format!("{:>8}", "-"),
            }
        }
        let mut out = String::from(
            "  total(s)    self(s)      calls   gflop/s      gb/s    flop/b  scope\n\
             ----------  ----------  ---------  --------  --------  --------  -----\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:>10.6}  {:>10.6}  {:>9}  {}  {}  {}  {}{}\n",
                row.total_secs(),
                row.self_secs(),
                row.calls,
                rate(row.gflops_per_sec()),
                rate(row.gbytes_per_sec()),
                rate(row.arithmetic_intensity()),
                "  ".repeat(row.depth),
                row.name,
            ));
        }
        out
    }

    /// Renders folded-stack flamegraph lines: `a;b;c <self_micros>`,
    /// one per tree node with nonzero exclusive time.
    pub fn render_flamegraph(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            if row.self_micros > 0 {
                out.push_str(&format!("{} {}\n", row.path, row.self_micros));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::span::SpanGuard;

    /// The profiler is process-global; serialize the tests that toggle it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_scope_is_inert() {
        let _guard = test_lock();
        set_profiling(false);
        let clock = ManualClock::new();
        {
            let _p = ProfScope::enter_with_clock("prof_inert_scope", &clock);
            clock.advance_secs(5.0);
        }
        assert!(profile_report().row("prof_inert_scope").is_none());
    }

    #[test]
    fn nested_scopes_build_a_merged_tree() {
        let _guard = test_lock();
        set_profiling(true);
        reset_profile();
        let clock = ManualClock::new();
        for _ in 0..2 {
            let _a = ProfScope::enter_with_clock("prof_tree_a", &clock);
            clock.advance_micros(100);
            {
                let _b = ProfScope::enter_with_clock("prof_tree_b", &clock);
                clock.advance_micros(300);
            }
            clock.advance_micros(50);
        }
        set_profiling(false);

        let report = profile_report();
        let a = report.row("prof_tree_a").expect("outer scope recorded");
        let b = report
            .row("prof_tree_a;prof_tree_b")
            .expect("inner nested under outer");
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_micros, 900, "2 × (100 + 300 + 50)");
        assert_eq!(a.self_micros, 300, "2 × (100 + 50)");
        assert_eq!(a.depth, 0);
        assert_eq!(b.calls, 2);
        assert_eq!(b.total_micros, 600);
        assert_eq!(b.self_micros, 600, "leaf: self == total");
        assert_eq!(b.depth, 1);

        let flame = report.render_flamegraph();
        assert!(
            flame.contains("prof_tree_a 300\n"),
            "folded self time: {flame}"
        );
        assert!(flame.contains("prof_tree_a;prof_tree_b 600\n"), "{flame}");
        let table = report.render_table();
        assert!(table.contains("prof_tree_a"), "{table}");
        assert!(table.contains("  prof_tree_b"), "child indented: {table}");
    }

    #[test]
    fn reset_zeroes_stats_and_report_skips_empty_nodes() {
        let _guard = test_lock();
        set_profiling(true);
        reset_profile();
        let clock = ManualClock::new();
        {
            let _p = ProfScope::enter_with_clock("prof_reset_scope", &clock);
            clock.advance_micros(10);
        }
        assert!(profile_report().row("prof_reset_scope").is_some());
        reset_profile();
        set_profiling(false);
        assert!(
            profile_report().row("prof_reset_scope").is_none(),
            "reset nodes must not appear in reports"
        );
    }

    #[test]
    fn spans_participate_while_profiling_is_enabled() {
        let _guard = test_lock();
        set_profiling(true);
        reset_profile();
        let clock = ManualClock::new();
        {
            let _outer = SpanGuard::enter_with_clock("prof_span_outer", &clock);
            clock.advance_micros(40);
            {
                let _inner = ProfScope::enter_with_clock("prof_span_kernel", &clock);
                clock.advance_micros(60);
            }
        }
        set_profiling(false);

        let report = profile_report();
        let outer = report
            .row("prof_span_outer")
            .expect("span became a profile node");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.total_micros, 100);
        assert_eq!(outer.self_micros, 40);
        let kernel = report
            .row("prof_span_outer;prof_span_kernel")
            .expect("nested kernel");
        assert_eq!(kernel.total_micros, 60);
    }

    #[test]
    fn work_counters_merge_exactly_across_threads() {
        let _guard = test_lock();
        set_profiling(true);
        reset_profile();
        const THREADS: u64 = 4;
        const ITERS: u64 = 25;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ITERS {
                        let p = ProfScope::enter("prof_work_mt");
                        p.add_work(100, 40, 1);
                        // Split increments accumulate within one scope.
                        p.add_work(11, 8, 2);
                    }
                });
            }
        });
        set_profiling(false);
        let report = profile_report();
        let row = report.row("prof_work_mt").expect("scope recorded");
        assert_eq!(row.calls, THREADS * ITERS);
        assert_eq!(row.flops, THREADS * ITERS * 111);
        assert_eq!(row.bytes, THREADS * ITERS * 48);
        assert_eq!(row.items, THREADS * ITERS * 3);
    }

    #[test]
    fn derived_roofline_metrics() {
        let row = ProfileRow {
            name: "k".into(),
            path: "k".into(),
            depth: 0,
            calls: 1,
            total_micros: 2_000_000, // 2 s
            self_micros: 2_000_000,
            flops: 8_000_000_000, // 8 GFLOP
            bytes: 1_000_000_000, // 1 GB
            items: 7,
        };
        assert!((row.gflops_per_sec().unwrap() - 4.0).abs() < 1e-12);
        assert!((row.gbytes_per_sec().unwrap() - 0.5).abs() < 1e-12);
        assert!((row.arithmetic_intensity().unwrap() - 8.0).abs() < 1e-12);
        assert!(row.has_work());

        let idle = ProfileRow {
            name: "i".into(),
            path: "i".into(),
            depth: 0,
            calls: 1,
            total_micros: 10,
            self_micros: 10,
            flops: 0,
            bytes: 0,
            items: 0,
        };
        assert_eq!(idle.gflops_per_sec(), None);
        assert_eq!(idle.gbytes_per_sec(), None);
        assert_eq!(idle.arithmetic_intensity(), None);
        assert!(!idle.has_work());
        // Uninstrumented rows render as dashes, not zeros.
        let table = ProfileReport { rows: vec![idle] }.render_table();
        assert!(table.contains("gflop/s"), "{table}");
        assert!(table.contains("-"), "{table}");
    }

    #[test]
    fn disabled_add_work_is_inert_and_never_reads_the_clock() {
        use std::sync::atomic::AtomicU64;

        struct CountingClock(AtomicU64);
        impl Clock for CountingClock {
            fn now_micros(&self) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed)
            }
        }

        let _guard = test_lock();
        set_profiling(false);
        let clock = CountingClock(AtomicU64::new(0));
        {
            let p = ProfScope::enter_with_clock("prof_work_inert", &clock);
            for _ in 0..1000 {
                p.add_work(1, 1, 1);
            }
        }
        // With profiling off the whole enter/add_work/drop sequence is
        // the single `ENABLED` load: the clock is never consulted and
        // nothing reaches the call tree.
        assert_eq!(clock.0.load(Ordering::Relaxed), 0, "no clock reads");
        assert!(profile_report().row("prof_work_inert").is_none());
    }

    #[test]
    fn unmatched_exit_is_dropped() {
        let _guard = test_lock();
        set_profiling(false);
        // Simulate a scope opened before profiling was disabled: the
        // bare exit on an empty stack must be a no-op.
        scope_exit(123, WorkCounts::default());
        assert!(profile_report().row("").is_none());
    }
}
