//! The black-box flight recorder: bounded, lossy, per-thread rings of
//! the most recent events, dumped when the process is about to die.
//!
//! Sinks answer "what happened during the run" — but only if the run
//! lives long enough to flush them. The recorder answers "what were the
//! last things this process did" when it does not: each thread owns a
//! fixed-capacity ring ([`RING_CAPACITY`] entries of [`RecEntry`],
//! preallocated at registration) that captures every emitted event even
//! when no sink is installed. The steady-state push is one relaxed
//! `fetch_add` for the global sequence stamp plus an uncontended
//! `try_lock` and a by-value slot write — no allocation: messages and a
//! `k=v` field summary are copied into fixed inline buffers, truncated
//! at a UTF-8 boundary. If the try_lock ever loses to a concurrent dump,
//! the entry is dropped; the recorder is lossy by contract, and the
//! per-ring `seq` counter makes the loss visible in the dump header.
//!
//! Dumps — triggered by the panic hook ([`FlightRecorder::install_panic_hook`]),
//! by fault-injection kill sites ([`record_kill_site`]), or by the
//! process's signal loop on SIGTERM — merge all rings in global push
//! order and write one JSON object per line, so a crashed run's final
//! moments are machine-parseable (`RunTelemetry::from_jsonl` skips the
//! recorder-only lines; the chaos suite asserts the tail names the kill
//! site).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

use crate::event::Event;
use crate::json::JsonValue;
use crate::level::Level;

/// Entries each thread's ring retains (the newest ones win).
pub const RING_CAPACITY: usize = 256;
/// Inline bytes kept of an event message.
const MSG_CAP: usize = 64;
/// Inline bytes kept of the rendered `k=v` field summary.
const DETAIL_CAP: usize = 120;

/// One recorded entry. Fixed-size and `Copy`: pushing it is a slot write.
#[derive(Clone, Copy)]
struct RecEntry {
    seq: u64,
    ts_micros: u64,
    level: Level,
    target: &'static str,
    trace_id: u128,
    span_id: u64,
    parent_span_id: u64,
    msg_len: u8,
    msg: [u8; MSG_CAP],
    detail_len: u8,
    detail: [u8; DETAIL_CAP],
}

impl RecEntry {
    fn blank() -> RecEntry {
        RecEntry {
            seq: 0,
            ts_micros: 0,
            level: Level::Info,
            target: "",
            trace_id: 0,
            span_id: 0,
            parent_span_id: 0,
            msg_len: 0,
            msg: [0; MSG_CAP],
            detail_len: 0,
            detail: [0; DETAIL_CAP],
        }
    }

    fn msg_str(&self) -> &str {
        // Inline buffers are filled by `copy_truncated`, which cuts only
        // at UTF-8 boundaries, so this cannot fail.
        std::str::from_utf8(&self.msg[..self.msg_len as usize]).unwrap_or("")
    }

    fn detail_str(&self) -> &str {
        std::str::from_utf8(&self.detail[..self.detail_len as usize]).unwrap_or("")
    }
}

/// Copies `s` into `buf`, truncating at a char boundary; returns the
/// stored length. No allocation.
fn copy_truncated(s: &str, buf: &mut [u8]) -> u8 {
    let mut take = s.len().min(buf.len());
    while take > 0 && !s.is_char_boundary(take) {
        take -= 1;
    }
    buf[..take].copy_from_slice(&s.as_bytes()[..take]);
    take as u8
}

/// `fmt::Write` into a fixed buffer, silently truncating at the end —
/// the zero-allocation path for rendering field summaries.
struct FixedWriter<'a> {
    buf: &'a mut [u8],
    len: usize,
}

impl std::fmt::Write for FixedWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let room = self.buf.len() - self.len;
        let mut take = s.len().min(room);
        while take > 0 && !s.is_char_boundary(take) {
            take -= 1;
        }
        self.buf[self.len..self.len + take].copy_from_slice(&s.as_bytes()[..take]);
        self.len += take;
        Ok(())
    }
}

/// One thread's ring. `entries` is allocated once at registration and
/// then only overwritten in place.
struct Ring {
    thread: String,
    /// Total entries ever pushed (so `seq - len` = entries overwritten).
    pushed: u64,
    next: usize,
    filled: usize,
    entries: Vec<RecEntry>,
}

impl Ring {
    fn push(&mut self, entry: RecEntry) {
        self.entries[self.next] = entry;
        self.next = (self.next + 1) % RING_CAPACITY;
        self.filled = (self.filled + 1).min(RING_CAPACITY);
        self.pushed += 1;
    }

    /// Entries oldest-first.
    fn iter_ordered(&self) -> impl Iterator<Item = &RecEntry> {
        let start = if self.filled < RING_CAPACITY {
            0
        } else {
            self.next
        };
        (0..self.filled).map(move |i| &self.entries[(start + i) % RING_CAPACITY])
    }
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(1);
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

thread_local! {
    static LOCAL_RING: Arc<Mutex<Ring>> = register_ring();
}

fn register_ring() -> Arc<Mutex<Ring>> {
    let thread = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
    let ring = Arc::new(Mutex::new(Ring {
        thread,
        pushed: 0,
        next: 0,
        filled: 0,
        entries: vec![RecEntry::blank(); RING_CAPACITY],
    }));
    RINGS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(ring.clone());
    ring
}

/// True when the recorder would capture an event at `level`. The
/// `event!` macros OR this with [`crate::enabled`], so capture works
/// with every sink disabled. `Trace`-level spam stays out of the rings.
#[inline]
pub fn recorder_wants(level: Level) -> bool {
    RECORDING.load(Ordering::Relaxed) && (level as u8) <= (Level::Debug as u8)
}

/// Captures one emitted event into the calling thread's ring.
pub(crate) fn record_event(event: &Event) {
    if !recorder_wants(event.level) {
        return;
    }
    let mut entry = RecEntry::blank();
    entry.seq = GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed);
    entry.ts_micros = event.ts_micros;
    entry.level = event.level;
    entry.target = event.target;
    if let Some(ctx) = event.trace {
        entry.trace_id = ctx.trace_id;
        entry.span_id = ctx.span_id;
        entry.parent_span_id = ctx.parent_span_id.unwrap_or(0);
    }
    entry.msg_len = copy_truncated(&event.message, &mut entry.msg);
    let mut w = FixedWriter {
        buf: &mut entry.detail,
        len: 0,
    };
    for (i, (k, v)) in event.fields.iter().enumerate() {
        let _ = write!(w, "{}{k}={v}", if i == 0 { "" } else { " " });
    }
    entry.detail_len = w.len as u8;
    push_local(entry);
}

fn push_local(entry: RecEntry) {
    LOCAL_RING.with(|ring| {
        // A dump in progress holds the lock; losing this entry is the
        // documented trade for never blocking the instrumented thread.
        if let Ok(mut ring) = ring.try_lock() {
            ring.push(entry);
        }
    });
}

/// One entry of a recorder dump, decoded back to owned strings.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpEntry {
    /// Global push sequence number (total order across threads).
    pub seq: u64,
    /// Microseconds since process start, from the emitting event.
    pub ts_micros: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem.
    pub target: String,
    /// Event message (truncated to the ring's inline storage).
    pub message: String,
    /// Rendered `k=v` field summary (truncated).
    pub detail: String,
    /// Active trace id at emission (0 = none).
    pub trace_id: u128,
    /// Active span id at emission (0 = none).
    pub span_id: u64,
    /// Parent of the active span (0 = root of its trace).
    pub parent_span_id: u64,
    /// Name of the thread that recorded the entry.
    pub thread: String,
}

impl DumpEntry {
    /// Serializes to one JSONL line (no trailing newline). The shape
    /// mirrors [`Event::to_json_line`] closely enough that generic JSONL
    /// tooling — and `RunTelemetry::from_jsonl` — parses it.
    pub fn to_json_line(&self) -> String {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("seq".to_string(), JsonValue::Num(self.seq as f64));
        obj.insert("ts_us".to_string(), JsonValue::Num(self.ts_micros as f64));
        obj.insert(
            "level".to_string(),
            JsonValue::Str(self.level.as_str().to_string()),
        );
        obj.insert("target".to_string(), JsonValue::Str(self.target.clone()));
        obj.insert("message".to_string(), JsonValue::Str(self.message.clone()));
        obj.insert("detail".to_string(), JsonValue::Str(self.detail.clone()));
        if self.trace_id != 0 {
            obj.insert(
                "trace_id".to_string(),
                JsonValue::Str(format!("{:032x}", self.trace_id)),
            );
            obj.insert(
                "span_id".to_string(),
                JsonValue::Str(format!("{:016x}", self.span_id)),
            );
            if self.parent_span_id != 0 {
                obj.insert(
                    "parent_span_id".to_string(),
                    JsonValue::Str(format!("{:016x}", self.parent_span_id)),
                );
            }
        }
        obj.insert("thread".to_string(), JsonValue::Str(self.thread.clone()));
        JsonValue::Obj(obj).to_json()
    }
}

/// The process-wide flight recorder (a facade over per-thread rings;
/// there is exactly one per process).
pub struct FlightRecorder;

impl FlightRecorder {
    /// Starts capturing. Idempotent; capture is independent of sinks.
    pub fn arm() {
        RECORDING.store(true, Ordering::Relaxed);
    }

    /// Stops capturing (existing ring contents are kept).
    pub fn disarm() {
        RECORDING.store(false, Ordering::Relaxed);
    }

    /// True while capturing.
    pub fn armed() -> bool {
        RECORDING.load(Ordering::Relaxed)
    }

    /// Sets (or clears) the file every dump trigger writes to.
    pub fn set_dump_path(path: Option<PathBuf>) {
        *DUMP_PATH.lock().unwrap_or_else(|e| e.into_inner()) = path;
    }

    /// The configured dump file, if any.
    pub fn dump_path() -> Option<PathBuf> {
        DUMP_PATH.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Clears every ring's contents (capacity and registration stay).
    pub fn reset() {
        for ring in RINGS.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
            ring.next = 0;
            ring.filled = 0;
            ring.pushed = 0;
        }
    }

    /// Pushes a synthetic entry (e.g. "about to die at site X") into the
    /// calling thread's ring, recorder armed or not.
    pub fn note(target: &'static str, message: &str, detail: &str) {
        let mut entry = RecEntry::blank();
        entry.seq = GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed);
        entry.ts_micros = crate::clock::now_micros();
        entry.level = Level::Warn;
        entry.target = target;
        if let Some(ctx) = crate::trace::current_trace() {
            entry.trace_id = ctx.trace_id;
            entry.span_id = ctx.span_id;
            entry.parent_span_id = ctx.parent_span_id.unwrap_or(0);
        }
        entry.msg_len = copy_truncated(message, &mut entry.msg);
        entry.detail_len = copy_truncated(detail, &mut entry.detail);
        push_local(entry);
    }

    /// Snapshots every ring, merged oldest-first by global sequence.
    pub fn dump() -> Vec<DumpEntry> {
        let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for ring in rings.iter() {
            let ring = ring.lock().unwrap_or_else(|e| e.into_inner());
            for entry in ring.iter_ordered() {
                out.push(DumpEntry {
                    seq: entry.seq,
                    ts_micros: entry.ts_micros,
                    level: entry.level,
                    target: entry.target.to_string(),
                    message: entry.msg_str().to_string(),
                    detail: entry.detail_str().to_string(),
                    trace_id: entry.trace_id,
                    span_id: entry.span_id,
                    parent_span_id: entry.parent_span_id,
                    thread: ring.thread.clone(),
                });
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Total entries lost to ring wrap-around, across all threads
    /// (visible in the dump header for loss accounting).
    pub fn dropped() -> u64 {
        let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
        rings
            .iter()
            .map(|r| {
                let r = r.lock().unwrap_or_else(|e| e.into_inner());
                r.pushed - r.filled as u64
            })
            .sum()
    }

    /// Renders a full dump as JSONL: one header object naming `reason`
    /// and the loss count, then one object per entry, oldest first.
    pub fn dump_jsonl(reason: &str) -> String {
        let entries = FlightRecorder::dump();
        let mut header = std::collections::BTreeMap::new();
        header.insert(
            "recorder".to_string(),
            JsonValue::Str("flight_dump".to_string()),
        );
        header.insert("reason".to_string(), JsonValue::Str(reason.to_string()));
        header.insert("entries".to_string(), JsonValue::Num(entries.len() as f64));
        header.insert(
            "dropped".to_string(),
            JsonValue::Num(FlightRecorder::dropped() as f64),
        );
        let mut out = JsonValue::Obj(header).to_json();
        out.push('\n');
        for entry in &entries {
            out.push_str(&entry.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Writes [`FlightRecorder::dump_jsonl`] to `path`.
    pub fn dump_to_file(path: &Path, reason: &str) -> std::io::Result<()> {
        std::fs::write(path, FlightRecorder::dump_jsonl(reason))
    }

    /// Dumps to the configured dump path, if one is set. Best-effort:
    /// returns the path written, `None` if unset or the write failed —
    /// a crash-path helper must never introduce a second failure.
    pub fn dump_now(reason: &str) -> Option<PathBuf> {
        let path = FlightRecorder::dump_path()?;
        match FlightRecorder::dump_to_file(&path, reason) {
            Ok(()) => Some(path),
            Err(_) => None,
        }
    }

    /// Installs a panic hook (once) that records the panic message and
    /// dumps to the configured path before the previous hook runs.
    pub fn install_panic_hook() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info.to_string();
                FlightRecorder::note("recorder", "panic", &msg);
                let _ = FlightRecorder::dump_now("panic");
                prev(info);
            }));
        });
    }
}

/// Records that an injected kill is about to fire at `site` and dumps to
/// the configured path. Called by the fault layer so every simulated
/// SIGKILL leaves the same forensics a real one would; the dump's final
/// entry names the site.
pub(crate) fn record_kill_site(site: &str) {
    if !RECORDING.load(Ordering::Relaxed) {
        return;
    }
    FlightRecorder::note("recorder", "kill", &format!("site={site}"));
    let _ = FlightRecorder::dump_now("kill");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;

    // Recording and rings are process-global; serialize with the same
    // lock the sink tests use so the macro-gating test stays valid.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        crate::sink::global_sink_lock()
    }

    fn entry_for(message: &str) -> Option<DumpEntry> {
        FlightRecorder::dump()
            .into_iter()
            .find(|e| e.message == message)
    }

    #[test]
    fn captures_events_with_no_sink_installed() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::arm();
        assert!(!crate::enabled(Level::Error), "no sink is installed");
        crate::info!("rec_test", "captured_without_sinks", n = 3u64, ok = true);
        FlightRecorder::disarm();
        let e = entry_for("captured_without_sinks").expect("recorder captured");
        assert_eq!(e.target, "rec_test");
        assert_eq!(e.detail, "n=3 ok=true");
        assert_eq!(e.trace_id, 0, "no active trace");
    }

    #[test]
    fn disarmed_recorder_captures_nothing() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::disarm();
        crate::info!("rec_test", "not_captured");
        assert!(entry_for("not_captured").is_none());
    }

    #[test]
    fn ring_wraps_and_counts_loss() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::arm();
        for i in 0..(RING_CAPACITY + 50) {
            crate::info!("rec_wrap", "w", i = i);
        }
        FlightRecorder::disarm();
        let entries: Vec<DumpEntry> = FlightRecorder::dump()
            .into_iter()
            .filter(|e| e.target == "rec_wrap")
            .collect();
        assert_eq!(entries.len(), RING_CAPACITY, "ring is bounded");
        assert_eq!(
            entries.last().unwrap().detail,
            format!("i={}", RING_CAPACITY + 49),
            "newest entries survive"
        );
        assert!(FlightRecorder::dropped() >= 50, "loss is accounted");
        // seq strictly increases through the merged dump.
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn entries_carry_the_active_trace() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::arm();
        let ctx = TraceContext::from_seed(77);
        {
            let _t = ctx.enter();
            crate::info!("rec_trace", "traced");
            let child = ctx.child();
            let _c = child.enter();
            crate::info!("rec_trace", "traced_child");
        }
        FlightRecorder::disarm();
        let e = entry_for("traced").unwrap();
        assert_eq!(e.trace_id, ctx.trace_id);
        assert_eq!(e.span_id, ctx.span_id);
        assert_eq!(e.parent_span_id, 0, "root span has no parent");
        let line = e.to_json_line();
        assert!(line.contains(&ctx.trace_id_hex()), "{line}");
        let c = entry_for("traced_child").unwrap();
        assert_eq!(c.trace_id, ctx.trace_id);
        assert_eq!(c.parent_span_id, ctx.span_id, "child links to parent");
        assert!(c.to_json_line().contains("parent_span_id"));
    }

    #[test]
    fn long_messages_truncate_at_char_boundaries() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::arm();
        let long = "é".repeat(200); // 2 bytes per char: forces a boundary cut
        FlightRecorder::note("rec_trunc", &long, &long);
        FlightRecorder::disarm();
        let e = FlightRecorder::dump()
            .into_iter()
            .find(|e| e.target == "rec_trunc")
            .unwrap();
        assert!(e.message.chars().all(|c| c == 'é'));
        assert!(e.message.len() <= MSG_CAP);
        assert!(e.detail.len() <= DETAIL_CAP);
    }

    #[test]
    fn dump_jsonl_is_parseable_and_tail_names_a_kill_site() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::arm();
        crate::info!("rec_dump", "before_kill");
        record_kill_site("train.post_backward");
        FlightRecorder::disarm();
        let text = FlightRecorder::dump_jsonl("test");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "{text}");
        for line in &lines {
            crate::json::parse(line).expect("every dump line parses");
        }
        let head = crate::json::parse(lines[0]).unwrap();
        assert_eq!(head.get("reason").unwrap().as_str(), Some("test"));
        let tail = lines.last().unwrap();
        assert!(
            tail.contains("train.post_backward"),
            "tail must name the kill site: {tail}"
        );
    }

    #[test]
    fn concurrent_writers_wrap_with_correct_per_thread_eviction() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::arm();
        const WRITERS: usize = 4;
        const OVERFLOW: usize = 100;
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                s.spawn(move || {
                    for i in 0..RING_CAPACITY + OVERFLOW {
                        crate::info!("rec_conc", "c", t = t, i = i);
                    }
                });
            }
        });
        FlightRecorder::disarm();
        // No dump ran concurrently, so no try_lock losses: every ring
        // holds exactly its newest RING_CAPACITY entries.
        let entries: Vec<DumpEntry> = FlightRecorder::dump()
            .into_iter()
            .filter(|e| e.target == "rec_conc")
            .collect();
        assert_eq!(entries.len(), WRITERS * RING_CAPACITY);
        for t in 0..WRITERS {
            let marker = format!("t={t} ");
            let mine: Vec<&DumpEntry> = entries
                .iter()
                .filter(|e| e.detail.starts_with(&marker))
                .collect();
            assert_eq!(mine.len(), RING_CAPACITY, "writer {t} ring is full");
            // Oldest entries were evicted in push order: the survivors are
            // exactly the last RING_CAPACITY pushes, oldest first.
            for (k, e) in mine.iter().enumerate() {
                assert_eq!(
                    e.detail,
                    format!("t={t} i={}", OVERFLOW + k),
                    "writer {t} eviction order broken at slot {k}"
                );
            }
            assert!(
                mine.windows(2).all(|w| w[0].seq < w[1].seq),
                "per-thread seq order broken for writer {t}"
            );
        }
        assert!(
            FlightRecorder::dropped() >= (WRITERS * OVERFLOW) as u64,
            "wrap-around loss must be accounted"
        );
        // The merged dump is globally ordered by sequence.
        let all = FlightRecorder::dump();
        assert!(all.windows(2).all(|w| w[0].seq <= w[1].seq));
    }

    #[test]
    fn dumps_taken_while_writers_race_stay_valid_jsonl() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::arm();
        std::thread::scope(|s| {
            for t in 0..3 {
                s.spawn(move || {
                    for i in 0..2 * RING_CAPACITY {
                        crate::info!("rec_race", "r", t = t, i = i);
                    }
                });
            }
            // Dump repeatedly while the writers are mid-wrap; every dump
            // must be parseable JSONL with a well-formed header, and any
            // entry that lost its try_lock race to us is simply absent.
            for _ in 0..5 {
                let text = FlightRecorder::dump_jsonl("race");
                let mut lines = text.lines();
                let head = crate::json::parse(lines.next().unwrap()).expect("header parses");
                assert_eq!(head.get("reason").unwrap().as_str(), Some("race"));
                for line in lines {
                    crate::json::parse(line).expect("every dump line parses");
                }
            }
        });
        FlightRecorder::disarm();
        // After the writers join, each surviving per-thread sequence is
        // still strictly ordered even though pushes may have been lost.
        let entries: Vec<DumpEntry> = FlightRecorder::dump()
            .into_iter()
            .filter(|e| e.target == "rec_race")
            .collect();
        assert!(!entries.is_empty());
        for t in 0..3 {
            let marker = format!("t={t} ");
            let mine: Vec<&DumpEntry> = entries
                .iter()
                .filter(|e| e.detail.starts_with(&marker))
                .collect();
            assert!(mine.len() <= RING_CAPACITY, "ring stays bounded");
            let indices: Vec<usize> = mine
                .iter()
                .map(|e| e.detail.split("i=").nth(1).unwrap().parse().unwrap())
                .collect();
            assert!(
                indices.windows(2).all(|w| w[0] < w[1]),
                "writer {t} retained entries out of push order: {indices:?}"
            );
        }
    }

    #[test]
    fn dump_now_writes_the_configured_file() {
        let _g = locked();
        crate::take_sinks();
        FlightRecorder::reset();
        FlightRecorder::arm();
        let path = std::env::temp_dir().join("privim-recorder-dump-test.jsonl");
        FlightRecorder::set_dump_path(Some(path.clone()));
        crate::warn!("rec_file", "last_words");
        let written = FlightRecorder::dump_now("unit").expect("path configured");
        FlightRecorder::set_dump_path(None);
        FlightRecorder::disarm();
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("last_words"), "{text}");
        assert!(text.contains("\"reason\":\"unit\""), "{text}");
        std::fs::remove_file(&path).ok();
        assert_eq!(FlightRecorder::dump_now("noop"), None, "path cleared");
    }
}
