//! Cross-process span export and trace assembly.
//!
//! A process that arms span export ([`arm_span_export`] for a JSONL
//! file, [`arm_span_ring`] for an in-memory ring served over
//! `/debug/spans`) gets one [`SpanRecord`] per closed span, stamped
//! with the process name and the active [`crate::TraceContext`] ids.
//! Because every id in the tier is a pure splitmix64 function of the
//! request id plus well-known child indices (see [`crate::trace`]),
//! records exported by *different* processes line up into one tree:
//! the router's attempt span id equals the parent id the replica wrote
//! for its request span, with no clock or global-counter coordination.
//!
//! [`render_tier_traces`] is that assembler: it merges records from any
//! number of processes, groups them by trace id, checks connectivity,
//! renders the span tree, and derives a per-hop latency decomposition
//! (router queue, retry backoff, upstream transport, replica queue,
//! worker compute) from the span names the tier agrees on.
//!
//! Ids are serialized as fixed-width lowercase hex *strings* — the JSON
//! layer ([`crate::json`]) carries numbers as `f64`, which cannot
//! round-trip a 64-bit span id exactly.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::{self, JsonValue};

/// Cap on the in-memory ring: old spans are dropped once a process has
/// this many buffered, so debug endpoints stay bounded.
const RING_CAP: usize = 4096;

/// One exported span: ids, timing, and free-form annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Name of the exporting process (`router`, `serve`, `chaos`, …).
    pub process: String,
    /// Span name (`serve.request`, `router.attempt`, …).
    pub name: String,
    /// 128-bit trace id shared by every span of one request.
    pub trace_id: u128,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (`None` for a root).
    pub parent_span_id: Option<u64>,
    /// Start time, microseconds (per-process monotonic epoch).
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Key/value annotations (`attempt=2`, `cancelled=true`, …).
    pub annotations: Vec<(String, String)>,
}

impl SpanRecord {
    /// Serializes to one compact JSON object (ids as fixed-width hex
    /// strings; annotation keys sorted by the object encoding).
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("process".into(), JsonValue::Str(self.process.clone()));
        obj.insert("name".into(), JsonValue::Str(self.name.clone()));
        obj.insert(
            "trace_id".into(),
            JsonValue::Str(format!("{:032x}", self.trace_id)),
        );
        obj.insert(
            "span_id".into(),
            JsonValue::Str(format!("{:016x}", self.span_id)),
        );
        if let Some(parent) = self.parent_span_id {
            obj.insert(
                "parent_span_id".into(),
                JsonValue::Str(format!("{parent:016x}")),
            );
        }
        obj.insert("start_us".into(), JsonValue::Num(self.start_us as f64));
        obj.insert("dur_us".into(), JsonValue::Num(self.dur_us as f64));
        if !self.annotations.is_empty() {
            let mut ann = BTreeMap::new();
            for (k, v) in &self.annotations {
                ann.insert(k.clone(), JsonValue::Str(v.clone()));
            }
            obj.insert("annotations".into(), JsonValue::Obj(ann));
        }
        JsonValue::Obj(obj).to_json()
    }

    /// Parses one object produced by [`SpanRecord::to_json`]. Returns
    /// `None` on any shape or hex violation rather than guessing.
    pub fn from_json(value: &JsonValue) -> Option<SpanRecord> {
        fn hex(value: Option<&JsonValue>, len: usize) -> Option<u128> {
            let s = value?.as_str()?;
            if s.len() != len || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
                return None;
            }
            u128::from_str_radix(s, 16).ok()
        }
        let annotations = match value.get("annotations") {
            None => Vec::new(),
            Some(ann) => ann
                .as_object()?
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
                .collect::<Option<Vec<_>>>()?,
        };
        Some(SpanRecord {
            process: value.get("process")?.as_str()?.to_string(),
            name: value.get("name")?.as_str()?.to_string(),
            trace_id: hex(value.get("trace_id"), 32)?,
            span_id: hex(value.get("span_id"), 16)? as u64,
            parent_span_id: match value.get("parent_span_id") {
                None => None,
                some => Some(hex(some, 16)? as u64),
            },
            start_us: value.get("start_us")?.as_u64()?,
            dur_us: value.get("dur_us")?.as_u64()?,
            annotations,
        })
    }

    /// The value of annotation `key`, if present.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

struct ExportState {
    process: String,
    file: Option<std::fs::File>,
    ring: Option<VecDeque<SpanRecord>>,
}

static EXPORT: Mutex<Option<ExportState>> = Mutex::new(None);
static ARMED: AtomicBool = AtomicBool::new(false);

fn with_state<T>(f: impl FnOnce(&mut Option<ExportState>) -> T) -> T {
    f(&mut EXPORT.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Arms span export for this process: every closed span (and every
/// explicitly exported record) is appended as one JSON line to `path`.
/// The ring, if already armed, is kept. Export stays armed until
/// [`disarm_span_export`].
pub fn arm_span_export(process: &str, path: &str) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    with_state(|state| {
        let ring = state.as_mut().and_then(|s| s.ring.take());
        *state = Some(ExportState {
            process: process.to_string(),
            file: Some(file),
            ring,
        });
    });
    ARMED.store(true, Ordering::Release);
    Ok(())
}

/// Arms the in-memory span ring (most recent [`RING_CAP`] spans),
/// which debug endpoints serve as JSONL via [`spans_jsonl`]. A file
/// sink armed earlier keeps running.
pub fn arm_span_ring(process: &str) {
    with_state(|state| match state {
        Some(s) => {
            if s.ring.is_none() {
                s.ring = Some(VecDeque::new());
            }
        }
        None => {
            *state = Some(ExportState {
                process: process.to_string(),
                file: None,
                ring: Some(VecDeque::new()),
            });
        }
    });
    ARMED.store(true, Ordering::Release);
}

/// Disarms both sinks and drops buffered spans.
pub fn disarm_span_export() {
    ARMED.store(false, Ordering::Release);
    with_state(|state| *state = None);
}

/// Whether any span sink is armed — a single relaxed load, so the
/// not-armed fast path costs nothing on the request hot path.
pub fn span_export_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Exports one record to the armed sinks. A no-op when nothing is
/// armed. An empty `record.process` is replaced with the armed process
/// name, so callers on the hot path need not know it.
pub fn export_span(mut record: SpanRecord) {
    if !span_export_armed() {
        return;
    }
    with_state(|state| {
        let Some(state) = state.as_mut() else { return };
        if record.process.is_empty() {
            record.process = state.process.clone();
        }
        if let Some(file) = state.file.as_mut() {
            let mut line = record.to_json();
            line.push('\n');
            let _ = file.write_all(line.as_bytes());
            let _ = file.flush();
        }
        if let Some(ring) = state.ring.as_mut() {
            if ring.len() >= RING_CAP {
                ring.pop_front();
            }
            ring.push_back(record);
        }
    });
}

/// A snapshot of the in-memory ring (empty when no ring is armed).
pub fn exported_spans() -> Vec<SpanRecord> {
    with_state(|state| {
        state
            .as_ref()
            .and_then(|s| s.ring.as_ref())
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    })
}

/// The in-memory ring rendered as JSONL, ready to serve from a debug
/// endpoint or merge into [`render_tier_traces`].
pub fn spans_jsonl() -> String {
    let mut out = String::new();
    for record in exported_spans() {
        out.push_str(&record.to_json());
        out.push('\n');
    }
    out
}

/// Parses JSONL span records, skipping blank and malformed lines (a
/// merged view should survive one process writing a torn final line).
pub fn parse_spans_jsonl(text: &str) -> Vec<SpanRecord> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| json::parse(line).ok())
        .filter_map(|value| SpanRecord::from_json(&value))
        .collect()
}

/// One hop row of the latency decomposition: label plus milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct HopRow {
    /// Hop label (`router.queue_wait`, `replica.compute`, …).
    pub hop: String,
    /// Total milliseconds attributed to this hop.
    pub ms: f64,
}

struct TraceTree<'a> {
    records: Vec<&'a SpanRecord>,
    by_span: BTreeMap<u64, usize>,
    children: BTreeMap<u64, Vec<usize>>,
    roots: Vec<usize>,
}

impl<'a> TraceTree<'a> {
    fn build(records: Vec<&'a SpanRecord>) -> TraceTree<'a> {
        let mut by_span = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            by_span.insert(r.span_id, i);
        }
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for (i, r) in records.iter().enumerate() {
            match r.parent_span_id {
                Some(parent) if by_span.contains_key(&parent) => {
                    children.entry(parent).or_default().push(i);
                }
                // Orphans (parent never exported) render as roots so
                // the spans stay visible; they break connectivity.
                _ => roots.push(i),
            }
        }
        // Deterministic order: by start time, span id breaking ties.
        let key = |records: &[&SpanRecord], i: usize| (records[i].start_us, records[i].span_id);
        for list in children.values_mut() {
            list.sort_by_key(|&i| key(&records, i));
        }
        roots.sort_by_key(|&i| key(&records, i));
        TraceTree {
            records,
            by_span,
            children,
            roots,
        }
    }

    fn processes(&self) -> usize {
        let mut names: Vec<&str> = self.records.iter().map(|r| r.process.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Connected ⇔ exactly one root (every other span reaches it).
    fn connected(&self) -> bool {
        self.roots.len() == 1
    }

    fn render_subtree(&self, out: &mut String, i: usize, depth: usize) {
        let r = self.records[i];
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} [{}] span={:016x} {:.3}ms",
            r.name,
            r.process,
            r.span_id,
            r.dur_us as f64 / 1000.0
        ));
        for (k, v) in &r.annotations {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        if let Some(kids) = self.children.get(&r.span_id) {
            for &child in kids {
                self.render_subtree(out, child, depth + 1);
            }
        }
    }

    /// Whether span `i` sits under a span annotated `cancelled=true`
    /// (itself included) — cancelled hedge losers and everything they
    /// caused are excluded from the additive decomposition.
    fn cancelled(&self, i: usize) -> bool {
        let mut cursor = Some(i);
        while let Some(i) = cursor {
            let r = self.records[i];
            if r.annotation("cancelled") == Some("true") {
                return true;
            }
            cursor = r.parent_span_id.and_then(|p| self.by_span.get(&p).copied());
        }
        false
    }

    /// Per-hop decomposition relative to the root request span. Hops
    /// are identified by the span names the tier agrees on; the
    /// remainder that no hop claims is reported as `unattributed`.
    fn decomposition(&self) -> Vec<HopRow> {
        let Some(&root) = self.roots.first() else {
            return Vec::new();
        };
        let root_record = self.records[root];
        let root_process = root_record.process.as_str();
        let ms = |us: u64| us as f64 / 1000.0;
        let mut router_queue = 0.0;
        let mut backoff = 0.0;
        let mut upstream = 0.0;
        let mut replica_queue = 0.0;
        let mut compute = 0.0;
        for (i, r) in self.records.iter().enumerate() {
            if self.cancelled(i) {
                continue;
            }
            let local = r.process == root_process;
            match r.name.as_str() {
                "serve.queue_wait" if local => router_queue += ms(r.dur_us),
                "serve.queue_wait" => replica_queue += ms(r.dur_us),
                "serve.handle" if !local => compute += ms(r.dur_us),
                "router.attempt" => {
                    backoff += r
                        .annotation("backoff_ms")
                        .and_then(|v| v.parse::<f64>().ok())
                        .unwrap_or(0.0);
                    let nested: u64 = self
                        .children
                        .get(&r.span_id)
                        .into_iter()
                        .flatten()
                        .map(|&c| self.records[c])
                        .filter(|c| c.name == "serve.request")
                        .map(|c| c.dur_us)
                        .sum();
                    upstream += ms(r.dur_us.saturating_sub(nested));
                }
                _ => {}
            }
        }
        let total = ms(root_record.dur_us);
        let attributed = router_queue + backoff + upstream + replica_queue + compute;
        let mut rows = vec![
            HopRow {
                hop: "router.queue_wait".into(),
                ms: router_queue,
            },
            HopRow {
                hop: "router.backoff".into(),
                ms: backoff,
            },
            HopRow {
                hop: "router.upstream".into(),
                ms: upstream,
            },
            HopRow {
                hop: "replica.queue_wait".into(),
                ms: replica_queue,
            },
            HopRow {
                hop: "replica.compute".into(),
                ms: compute,
            },
        ];
        rows.push(HopRow {
            hop: "unattributed".into(),
            ms: (total - attributed).max(0.0),
        });
        rows.push(HopRow {
            hop: "total".into(),
            ms: total,
        });
        rows
    }
}

/// The per-hop decomposition for the trace containing `trace_id` (rows
/// as produced for [`render_tier_traces`]); empty if the trace has no
/// spans in `records`.
pub fn hop_decomposition(records: &[SpanRecord], trace_id: u128) -> Vec<HopRow> {
    let spans: Vec<&SpanRecord> = records.iter().filter(|r| r.trace_id == trace_id).collect();
    if spans.is_empty() {
        return Vec::new();
    }
    TraceTree::build(spans).decomposition()
}

/// Merges span records from any number of processes and renders one
/// block per trace: a summary line
/// `trace <id>: N spans, M processes, connected|disconnected (K roots)`,
/// the indented span tree, and the per-hop latency decomposition.
/// `filter` restricts output to one trace id. Traces render in trace-id
/// order; duplicate records (a span exported to both a file and a ring
/// that were then merged) are collapsed.
pub fn render_tier_traces(records: &[SpanRecord], filter: Option<u128>) -> String {
    let mut by_trace: BTreeMap<u128, Vec<&SpanRecord>> = BTreeMap::new();
    for record in records {
        if filter.is_some_and(|t| t != record.trace_id) {
            continue;
        }
        let spans = by_trace.entry(record.trace_id).or_default();
        if !spans.iter().any(|r| r.span_id == record.span_id) {
            spans.push(record);
        }
    }
    if by_trace.is_empty() {
        return "no spans matched\n".into();
    }
    let mut out = String::new();
    for (trace_id, spans) in by_trace {
        let tree = TraceTree::build(spans);
        let status = if tree.connected() {
            "connected".to_string()
        } else {
            format!("disconnected ({} roots)", tree.roots.len())
        };
        out.push_str(&format!(
            "trace {:032x}: {} spans, {} processes, {}\n",
            trace_id,
            tree.records.len(),
            tree.processes(),
            status
        ));
        for &root in &tree.roots {
            tree.render_subtree(&mut out, root, 1);
        }
        out.push_str("  hop decomposition (ms):\n");
        for row in tree.decomposition() {
            out.push_str(&format!("    {:<24}{:>12.3}\n", row.hop, row.ms));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceContext, CHILD_ATTEMPT_BASE, CHILD_HANDLE, CHILD_QUEUE_WAIT};

    fn record(
        process: &str,
        name: &str,
        ctx: TraceContext,
        start_us: u64,
        dur_us: u64,
        annotations: &[(&str, &str)],
    ) -> SpanRecord {
        SpanRecord {
            process: process.into(),
            name: name.into(),
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            start_us,
            dur_us,
            annotations: annotations
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// A three-process request: router request span with queue wait and
    /// two attempts (first failed, second reached the replica), the
    /// replica request re-derived from the propagated attempt span.
    fn tier_records() -> Vec<SpanRecord> {
        let root = TraceContext::from_request_id("req-1");
        let queue = root.child_n(CHILD_QUEUE_WAIT);
        let attempt1 = root.child_n(CHILD_ATTEMPT_BASE + 1);
        let attempt2 = root.child_n(CHILD_ATTEMPT_BASE + 2);
        // The replica only ever sees the header (trace id + attempt
        // span id) — re-derive exactly as server.rs does.
        let remote_parent = crate::trace::parse_trace_header(&attempt2.to_trace_header()).unwrap();
        let replica_req = remote_parent.child_n(crate::trace::CHILD_REMOTE_REQUEST);
        let replica_queue = replica_req.child_n(CHILD_QUEUE_WAIT);
        let replica_handle = replica_req.child_n(CHILD_HANDLE);
        let chaos = TraceContext::from_seed(40);
        vec![
            record("router", "serve.request", root, 0, 20_000, &[]),
            record("router", "serve.queue_wait", queue, 0, 1_000, &[]),
            record(
                "router",
                "router.attempt",
                attempt1,
                1_000,
                2_000,
                &[("attempt", "1"), ("backoff_ms", "0"), ("outcome", "error")],
            ),
            record(
                "router",
                "router.attempt",
                attempt2,
                5_000,
                14_000,
                &[("attempt", "2"), ("backoff_ms", "2"), ("outcome", "ok")],
            ),
            record("replica", "serve.request", replica_req, 6_000, 12_000, &[]),
            record(
                "replica",
                "serve.queue_wait",
                replica_queue,
                6_000,
                500,
                &[],
            ),
            record(
                "replica",
                "serve.handle",
                replica_handle,
                6_500,
                11_000,
                &[],
            ),
            record(
                "chaos",
                "chaos.fault",
                chaos,
                0,
                0,
                // Keys in sorted order: the JSON object parser yields
                // sorted keys, so only sorted fixtures round-trip as-is.
                &[("conn", "3"), ("fault", "delay_response")],
            ),
        ]
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let records = tier_records();
        let mut jsonl = String::new();
        for r in &records {
            jsonl.push_str(&r.to_json());
            jsonl.push('\n');
        }
        jsonl.push_str("\n{not json}\n{\"name\":\"missing fields\"}\n");
        let back = parse_spans_jsonl(&jsonl);
        assert_eq!(back, records, "malformed lines are skipped, rest survive");
    }

    #[test]
    fn hex_ids_round_trip_exactly() {
        let r = SpanRecord {
            process: "p".into(),
            name: "n".into(),
            trace_id: u128::MAX - 7,
            span_id: u64::MAX - 3,
            parent_span_id: Some(u64::MAX),
            start_us: 1,
            dur_us: 2,
            annotations: vec![],
        };
        let back = SpanRecord::from_json(&json::parse(&r.to_json()).unwrap()).unwrap();
        assert_eq!(back, r, "f64 would have destroyed these ids");
    }

    #[test]
    fn ring_arms_exports_and_caps() {
        let _guard = crate::sink::global_sink_lock();
        disarm_span_export();
        assert!(!span_export_armed());
        let records = tier_records();
        export_span(records[0].clone());
        assert!(exported_spans().is_empty(), "no-op while disarmed");
        arm_span_ring("test");
        assert!(span_export_armed());
        for r in &records {
            export_span(r.clone());
        }
        assert_eq!(exported_spans().len(), records.len());
        // Empty process names are filled with the armed name.
        let mut anon = records[0].clone();
        anon.process = String::new();
        anon.span_id ^= 1;
        export_span(anon);
        assert_eq!(exported_spans().last().unwrap().process, "test");
        let parsed = parse_spans_jsonl(&spans_jsonl());
        assert_eq!(parsed.len(), records.len() + 1);
        disarm_span_export();
        assert!(exported_spans().is_empty());
    }

    #[test]
    fn file_export_appends_jsonl() {
        let _guard = crate::sink::global_sink_lock();
        disarm_span_export();
        let path = std::env::temp_dir().join(format!(
            "privim-spanexport-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        arm_span_export("writer", path.to_str().unwrap()).unwrap();
        for r in tier_records() {
            export_span(r);
        }
        disarm_span_export();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = parse_spans_jsonl(&text);
        assert_eq!(back, tier_records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn assembles_a_connected_cross_process_tree() {
        let records = tier_records();
        let root = TraceContext::from_request_id("req-1");
        let rendered = render_tier_traces(&records, Some(root.trace_id));
        assert!(
            rendered.contains(&format!(
                "trace {:032x}: 7 spans, 2 processes, connected",
                root.trace_id
            )),
            "{rendered}"
        );
        // The replica request indents under the router's second attempt.
        assert!(
            rendered.contains("    serve.request [replica]"),
            "{rendered}"
        );
        assert!(rendered.contains("hop decomposition"), "{rendered}");
        // Unfiltered render also shows the chaos root, as its own trace.
        let all = render_tier_traces(&records, None);
        assert!(all.contains("chaos.fault [chaos]"), "{all}");
        assert!(
            render_tier_traces(&records, Some(1)).contains("no spans matched"),
            "unknown trace id"
        );
    }

    #[test]
    fn decomposition_attributes_every_hop() {
        let records = tier_records();
        let root = TraceContext::from_request_id("req-1");
        let rows = hop_decomposition(&records, root.trace_id);
        let get = |hop: &str| {
            rows.iter()
                .find(|r| r.hop == hop)
                .map(|r| r.ms)
                .unwrap_or(f64::NAN)
        };
        assert!((get("router.queue_wait") - 1.0).abs() < 1e-9);
        assert!((get("router.backoff") - 2.0).abs() < 1e-9);
        // attempt1 (2ms, no nested) + attempt2 (14ms − 12ms nested).
        assert!((get("router.upstream") - 4.0).abs() < 1e-9);
        assert!((get("replica.queue_wait") - 0.5).abs() < 1e-9);
        assert!((get("replica.compute") - 11.0).abs() < 1e-9);
        assert!((get("total") - 20.0).abs() < 1e-9);
        let attributed: f64 = rows
            .iter()
            .filter(|r| r.hop != "total" && r.hop != "unattributed")
            .map(|r| r.ms)
            .sum();
        assert!(
            (attributed + get("unattributed") - get("total")).abs() < 1e-9,
            "decomposition sums to the request span"
        );
    }

    #[test]
    fn cancelled_hedge_losers_are_excluded_from_decomposition() {
        let mut records = tier_records();
        let root = TraceContext::from_request_id("req-1");
        let hedge = root.child_n(crate::trace::CHILD_HEDGE_BASE + 2);
        records.push(record(
            "router",
            "router.attempt",
            hedge,
            5_000,
            9_000,
            &[("hedge", "true"), ("cancelled", "true")],
        ));
        // A replica span caused by the loser is likewise excluded.
        let loser_remote = crate::trace::parse_trace_header(&hedge.to_trace_header()).unwrap();
        let loser_req = loser_remote.child_n(crate::trace::CHILD_REMOTE_REQUEST);
        records.push(record(
            "replica",
            "serve.request",
            loser_req,
            6_000,
            8_000,
            &[],
        ));
        records.push(record(
            "replica",
            "serve.handle",
            loser_req.child_n(CHILD_HANDLE),
            6_000,
            7_000,
            &[],
        ));
        let rows = hop_decomposition(&records, root.trace_id);
        let compute = rows.iter().find(|r| r.hop == "replica.compute").unwrap();
        assert!(
            (compute.ms - 11.0).abs() < 1e-9,
            "loser compute must not count: {rows:?}"
        );
        let rendered = render_tier_traces(&records, Some(root.trace_id));
        assert!(rendered.contains("cancelled=true"), "{rendered}");
        assert!(rendered.contains("connected"), "{rendered}");
    }

    #[test]
    fn missing_parents_render_disconnected() {
        let mut records = tier_records();
        // Drop the router request root: attempts lose their parent.
        records.retain(|r| r.name != "serve.request" || r.process != "router");
        let root = TraceContext::from_request_id("req-1");
        let rendered = render_tier_traces(&records, Some(root.trace_id));
        assert!(rendered.contains("disconnected ("), "{rendered}");
    }
}
