//! A minimal JSON value, writer, and parser.
//!
//! The telemetry JSONL format must be writable from the hot path and
//! parseable back into [`crate::RunTelemetry`] without pulling serde into
//! this crate's mandatory dependency set, so the few hundred lines of
//! JSON plumbing live here. The writer emits canonical, escape-correct
//! JSON; the parser accepts any standard JSON document (numbers are read
//! as `f64`, which is exact for every integer the telemetry layer emits).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; sorted keys make output deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The `i`-th element if this is an array with at least `i + 1`
    /// elements.
    pub fn get_index(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value entries if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

/// Appends `value` to `out` as compact JSON.
pub fn write_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => write_number(out, *n),
        JsonValue::Str(s) => write_string(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Writes a number; non-finite values become `null` (JSON has no NaN).
pub fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else {
        // Rust's shortest-round-trip float formatting is valid JSON for
        // finite values (`1` for 1.0, `0.5`, `1e300`).
        let _ = write!(out, "{n}");
    }
}

/// Writes a JSON string literal with escapes.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON document from `text`.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pair?
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                let combined = 0x10000
                                    + ((code - 0xd800) << 10)
                                    + (low.wrapping_sub(0xdc00) & 0x3ff);
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape \\{}", other as char)),
                }
            }
            b if b < 0x80 => out.push(b as char),
            _ => {
                // Multi-byte UTF-8: find the full sequence.
                let start = *pos - 1;
                let len = utf8_len(b);
                let end = (start + len).min(bytes.len());
                match std::str::from_utf8(&bytes[start..end]) {
                    Ok(s) => {
                        out.push_str(s);
                        *pos = end;
                    }
                    Err(_) => return Err(format!("invalid utf-8 at byte {start}")),
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let s = std::str::from_utf8(&bytes[*pos..*pos + 4]).map_err(|e| e.to_string())?;
    let code = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_scalars() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Num(1.0).to_json(), "1");
        assert_eq!(JsonValue::Num(0.5).to_json(), "0.5");
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd".into()).to_json(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"a": [1, 2.5, null, true], "b": {"c": "x\ny", "d": -3e2}, "e": ""}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_f64(), Some(-300.0));
        assert_eq!(v.get("e").unwrap().as_str(), Some(""));
        let back = parse(&v.to_json()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_unicode_and_surrogates() {
        let v = parse(r#""café 😀 é""#).unwrap();
        assert_eq!(v.as_str(), Some("café 😀 é"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#""open"#).is_err());
    }

    #[test]
    fn integers_round_trip_exactly() {
        for n in [0u64, 1, 42, 1 << 52, u32::MAX as u64] {
            let v = parse(&JsonValue::Num(n as f64).to_json()).unwrap();
            assert_eq!(v.as_u64(), Some(n));
        }
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1.5).as_u64(), None);
    }
}
