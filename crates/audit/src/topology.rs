//! Topology inference (edge reconstruction).
//!
//! Edge-DP's promise is that the model's outputs should not reveal
//! whether any particular edge was in the training graph. The classic
//! reconstruction attack scores every candidate node pair by output
//! similarity — message passing makes adjacent nodes' embeddings (and
//! hence seed probabilities) correlated — ranks pairs by that score,
//! and predicts the top `|E|` as edges. Precision at `|E|` against the
//! true edge set is the headline number; chance level is the graph
//! density, so even modest precision on a sparse graph is a leak.
//!
//! On graphs where the full `n·(n-1)/2` pair universe is too large the
//! attack samples a deterministic (splitmix64-seeded) subset of
//! candidate pairs and evaluates against the true edges that fall
//! inside that universe.

use std::collections::BTreeSet;

use privim_graph::Graph;
use privim_obs::fault::splitmix64;

/// Summary of one edge-reconstruction run.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyOutcome {
    /// Fraction of the top-`|E|` ranked candidate pairs that are true
    /// edges, where `|E|` counts true edges inside the candidate
    /// universe. 0.0 when no true edge is in the universe.
    pub precision_at_e: f64,
    /// Number of candidate pairs scored.
    pub num_candidates: usize,
    /// Number of true (undirected) edges inside the candidate universe.
    pub num_true_edges: usize,
}

/// Normalizes a directed edge list into undirected, self-loop-free
/// pairs `(lo, hi)`.
pub(crate) fn true_edge_set(g: &Graph) -> BTreeSet<(u32, u32)> {
    g.edges()
        .filter(|(u, v, _)| u != v)
        .map(|(u, v, _)| (u.min(v), u.max(v)))
        .collect()
}

/// The candidate pair universe: every unordered pair when that fits in
/// `max_pairs`, otherwise a seeded splitmix64 sample of distinct pairs.
/// Returned sorted ascending so downstream iteration order is fixed.
fn candidate_pairs(n: usize, max_pairs: usize, seed: u64) -> Vec<(u32, u32)> {
    let total = n.saturating_mul(n.saturating_sub(1)) / 2;
    if total <= max_pairs {
        let mut pairs = Vec::with_capacity(total);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                pairs.push((u, v));
            }
        }
        return pairs;
    }
    let mut picked = BTreeSet::new();
    let mut state = seed;
    while picked.len() < max_pairs {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let r = splitmix64(state);
        let u = (r >> 32) as u32 % n as u32;
        let v = r as u32 % n as u32;
        if u != v {
            picked.insert((u.min(v), u.max(v)));
        }
    }
    picked.into_iter().collect()
}

/// Runs the edge-reconstruction attack on per-node `scores` (indexed by
/// node id) against `g`'s true edge set.
///
/// Candidate pairs are scored by `-|scores[u] - scores[v]|` (most
/// similar outputs first) and ranked with a deterministic tie-break on
/// the pair itself, so equal inputs always produce equal outcomes.
pub fn topology_attack(scores: &[f64], g: &Graph, max_pairs: usize, seed: u64) -> TopologyOutcome {
    let truth = true_edge_set(g);
    let candidates = candidate_pairs(g.num_nodes(), max_pairs, seed);

    let mut ranked: Vec<((u32, u32), f64)> = candidates
        .iter()
        .map(|&(u, v)| ((u, v), -(scores[u as usize] - scores[v as usize]).abs()))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let num_true_edges = candidates.iter().filter(|p| truth.contains(p)).count();
    let hits = ranked
        .iter()
        .take(num_true_edges)
        .filter(|(p, _)| truth.contains(p))
        .count();
    let precision_at_e = if num_true_edges == 0 {
        0.0
    } else {
        hits as f64 / num_true_edges as f64
    };

    privim_obs::counter("audit.topology_runs").add(1);
    TopologyOutcome {
        precision_at_e,
        num_candidates: candidates.len(),
        num_true_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;

    /// Path graph 0-1-2-...-(n-1), both directions.
    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 0.5);
            b.add_edge(i as u32 + 1, i as u32, 0.5);
        }
        b.build()
    }

    #[test]
    fn adjacent_similar_scores_reconstruct_the_path() {
        let n = 8;
        let g = path(n);
        // Monotone scores: adjacent nodes differ by exactly 1 unit,
        // non-adjacent pairs by more, so the top-|E| pairs ARE the path
        // edges.
        let scores: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let out = topology_attack(&scores, &g, 1_000, 7);
        assert_eq!(out.num_true_edges, n - 1);
        assert_eq!(out.num_candidates, n * (n - 1) / 2);
        assert_eq!(out.precision_at_e, 1.0);
    }

    #[test]
    fn uninformative_scores_are_near_density() {
        let n = 16;
        let g = path(n);
        // Constant scores: every pair ties, ranking falls back to the
        // deterministic pair order, and precision lands near density.
        let out = topology_attack(&vec![0.25; n], &g, 1_000, 7);
        assert!(out.precision_at_e < 0.5);
    }

    #[test]
    fn sampling_kicks_in_when_the_pair_universe_is_too_large() {
        let n = 64;
        let g = path(n);
        let scores: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let out = topology_attack(&scores, &g, 100, 7);
        assert_eq!(out.num_candidates, 100);
        assert!(out.num_true_edges <= n - 1);
        // Determinism: same seed, same universe, same outcome.
        let again = topology_attack(&scores, &g, 100, 7);
        assert_eq!(out, again);
        // A different seed samples a different universe.
        let other = topology_attack(&scores, &g, 100, 8);
        assert_eq!(other.num_candidates, 100);
    }

    #[test]
    fn empty_graph_reports_zero_precision_without_panicking() {
        let g = Graph::empty(5);
        let out = topology_attack(&[0.1, 0.2, 0.3, 0.4, 0.5], &g, 100, 1);
        assert_eq!(out.num_true_edges, 0);
        assert_eq!(out.precision_at_e, 0.0);
    }
}
