//! Black-box score extraction against a live `privim-serve` instance.
//!
//! The black-box adversary never touches the checkpoint: it sends
//! `POST /v1/seeds` with `k = |V|`, which returns every node ranked
//! with its model score — exactly the per-node score vector the
//! white-box attacks compute locally. Any gap between white-box and
//! black-box attack success therefore measures what the serving layer
//! hides, not what the model leaks.
//!
//! A second, purely black-box signal uses `POST /v1/spread`: for a
//! node pair `(u, v)`, `spread({u}) + spread({v}) - spread({u, v})`
//! measures how much the two nodes' influence overlaps, and adjacent
//! nodes overlap more than distant ones. [`influence_overlap_probe`]
//! turns that into an edge-inference AUC over a small probed pair
//! sample — a channel the white-box attack does not even need, so it
//! quantifies what the *spread endpoint* leaks about topology.
//!
//! Responses are parsed with a minimal hand-rolled extractor for the
//! flat number arrays and scalars we need (`seeds`, `scores`,
//! `spread`); the server serializes them with serde so the shape is
//! stable.

use std::collections::{BTreeMap, BTreeSet};

use privim_graph::Graph;
use privim_obs::fault::splitmix64;
use privim_serve::client::HttpClient;

use crate::roc;
use crate::topology::true_edge_set;

/// Pulls the full per-node score vector from a live server.
///
/// Returns scores indexed by node id (length `num_nodes`), or a
/// human-readable error if the server is unreachable, errors, or
/// returns fewer scores than nodes.
pub fn fetch_scores(addr: &str, num_nodes: usize) -> Result<Vec<f64>, String> {
    let mut client =
        HttpClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let body = format!("{{\"k\":{num_nodes},\"seed\":0}}");
    let resp = client
        .post("/v1/seeds", body.as_bytes())
        .map_err(|e| format!("POST /v1/seeds failed: {e}"))?;
    privim_obs::counter("audit.blackbox_requests").add(1);
    if resp.status != 200 {
        return Err(format!(
            "POST /v1/seeds returned {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let text = String::from_utf8_lossy(&resp.body).into_owned();
    scores_by_node(&text, num_nodes)
}

/// Reassembles the ranked `(seeds, scores)` arrays of a `/v1/seeds`
/// response into a score vector indexed by node id.
pub fn scores_by_node(response_body: &str, num_nodes: usize) -> Result<Vec<f64>, String> {
    let seeds = extract_number_array(response_body, "seeds")?;
    let scores = extract_number_array(response_body, "scores")?;
    if seeds.len() != scores.len() {
        return Err(format!(
            "seeds/scores length mismatch: {} vs {}",
            seeds.len(),
            scores.len()
        ));
    }
    let mut by_node = vec![f64::NAN; num_nodes];
    for (&v, &s) in seeds.iter().zip(&scores) {
        let id = v as usize;
        if v < 0.0 || v.fract() != 0.0 || id >= num_nodes {
            return Err(format!("seed id {v} is not a node id below {num_nodes}"));
        }
        by_node[id] = s;
    }
    if let Some(missing) = by_node.iter().position(|s| s.is_nan()) {
        return Err(format!(
            "server returned no score for node {missing}; audit needs k = |V| = {num_nodes}, got {}",
            seeds.len()
        ));
    }
    Ok(by_node)
}

/// Outcome of the `/v1/spread` influence-overlap edge probe.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapProbe {
    /// AUC of the overlap score as an edge-vs-non-edge classifier over
    /// the probed pairs. 0.5 is chance; higher means the spread
    /// endpoint leaks topology.
    pub probe_auc: f64,
    /// Total pairs probed (edges + non-edges).
    pub num_probes: usize,
}

/// Monte-Carlo trials per spread probe. Fixed so probe numbers are
/// comparable across runs; the server clamps to its own `--max-trials`.
const PROBE_TRIALS: usize = 200;

/// Queries `POST /v1/spread` for one seed set and returns the estimate.
pub fn fetch_spread(client: &mut HttpClient, seeds: &[u32]) -> Result<f64, String> {
    let ids: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
    let body = format!(
        "{{\"seeds\":[{}],\"trials\":{PROBE_TRIALS},\"seed\":0}}",
        ids.join(",")
    );
    let resp = client
        .post("/v1/spread", body.as_bytes())
        .map_err(|e| format!("POST /v1/spread failed: {e}"))?;
    privim_obs::counter("audit.blackbox_requests").add(1);
    if resp.status != 200 {
        return Err(format!(
            "POST /v1/spread returned {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let text = String::from_utf8_lossy(&resp.body);
    extract_number(&text, "spread")
}

/// Probes a live server's `/v1/spread` endpoint for topology leakage.
///
/// Samples up to `pairs_per_class` true edges and as many non-edges
/// (both seeded by `seed`, so a sweep probes the same pairs for every
/// checkpoint), scores each pair by influence overlap
/// `spread({u}) + spread({v}) - spread({u, v})`, and reports the AUC of
/// that score as an edge classifier. Singleton spreads are cached, so
/// the request count is at most `2 * pairs_per_class` joint queries
/// plus one per distinct endpoint node.
pub fn influence_overlap_probe(
    addr: &str,
    g: &Graph,
    pairs_per_class: usize,
    seed: u64,
) -> Result<OverlapProbe, String> {
    let n = g.num_nodes();
    let truth = true_edge_set(g);
    let edges: Vec<(u32, u32)> = truth.iter().copied().collect();

    // Seeded without-replacement pick of edge indices.
    let mut picked_edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut state = seed;
    if edges.len() <= pairs_per_class {
        picked_edges.extend(&edges);
    } else {
        while picked_edges.len() < pairs_per_class {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let idx = splitmix64(state) as usize % edges.len();
            picked_edges.insert(edges[idx]);
        }
    }

    // Seeded rejection sample of non-edges; bounded attempts so dense
    // graphs terminate with however many we found.
    let mut picked_non: BTreeSet<(u32, u32)> = BTreeSet::new();
    let target_non = picked_edges.len().min(pairs_per_class);
    let mut attempts = 0usize;
    while picked_non.len() < target_non && attempts < 64 * (target_non + 1) && n >= 2 {
        attempts += 1;
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let r = splitmix64(state);
        let u = (r >> 32) as u32 % n as u32;
        let v = r as u32 % n as u32;
        let pair = (u.min(v), u.max(v));
        if u != v && !truth.contains(&pair) {
            picked_non.insert(pair);
        }
    }

    let mut client =
        HttpClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut singleton: BTreeMap<u32, f64> = BTreeMap::new();
    let mut overlap = |client: &mut HttpClient, (u, v): (u32, u32)| -> Result<f64, String> {
        for node in [u, v] {
            if !singleton.contains_key(&node) {
                let s = fetch_spread(client, &[node])?;
                singleton.insert(node, s);
            }
        }
        let joint = fetch_spread(client, &[u, v])?;
        Ok(singleton[&u] + singleton[&v] - joint)
    };

    let mut edge_overlaps = Vec::with_capacity(picked_edges.len());
    for &p in &picked_edges {
        edge_overlaps.push(overlap(&mut client, p)?);
    }
    let mut non_overlaps = Vec::with_capacity(picked_non.len());
    for &p in &picked_non {
        non_overlaps.push(overlap(&mut client, p)?);
    }

    Ok(OverlapProbe {
        probe_auc: roc::auc(&edge_overlaps, &non_overlaps),
        num_probes: picked_edges.len() + picked_non.len(),
    })
}

/// Extracts the scalar JSON number under `"key"`.
fn extract_number(body: &str, key: &str) -> Result<f64, String> {
    let pattern = format!("\"{key}\"");
    let at = body
        .find(&pattern)
        .ok_or_else(|| format!("response has no \"{key}\" field"))?;
    let rest = body[at + pattern.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("\"{key}\" is not a scalar field"))?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("bad number {:?} in \"{key}\": {e}", &rest[..end]))
}

/// Extracts the flat JSON number array under `"key"`. Only handles the
/// shapes `/v1/seeds` actually produces (no nested arrays, no strings
/// containing brackets before the key's array).
fn extract_number_array(body: &str, key: &str) -> Result<Vec<f64>, String> {
    let pattern = format!("\"{key}\"");
    let at = body
        .find(&pattern)
        .ok_or_else(|| format!("response has no \"{key}\" field"))?;
    let rest = &body[at + pattern.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| format!("\"{key}\" is not an array"))?;
    let close = rest[open..]
        .find(']')
        .map(|i| open + i)
        .ok_or_else(|| format!("\"{key}\" array is unterminated"))?;
    rest[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|e| format!("bad number {s:?} in \"{key}\": {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RESPONSE: &str = concat!(
        "{\"seeds\":[2,0,1],\"scores\":[0.9,0.5,0.25],",
        "\"k\":3,\"seed\":0,\"model\":\"GCN\"}"
    );

    #[test]
    fn scores_land_at_their_node_ids() {
        let by_node = scores_by_node(RESPONSE, 3).unwrap();
        assert_eq!(by_node, vec![0.5, 0.25, 0.9]);
    }

    #[test]
    fn missing_nodes_are_an_error_not_a_silent_zero() {
        let err = scores_by_node(RESPONSE, 4).unwrap_err();
        assert!(err.contains("no score for node 3"), "{err}");
    }

    #[test]
    fn malformed_bodies_give_readable_errors() {
        assert!(scores_by_node("{}", 1).unwrap_err().contains("seeds"));
        assert!(scores_by_node("{\"seeds\":[0],\"scores\":[1,2]}", 1)
            .unwrap_err()
            .contains("mismatch"));
        assert!(scores_by_node("{\"seeds\":[9],\"scores\":[1.0]}", 3)
            .unwrap_err()
            .contains("not a node id"));
        assert!(scores_by_node("{\"seeds\":[0.5],\"scores\":[1.0]}", 3)
            .unwrap_err()
            .contains("not a node id"));
    }

    #[test]
    fn empty_arrays_parse_but_fail_coverage() {
        let body = "{\"seeds\":[],\"scores\":[]}";
        assert!(scores_by_node(body, 0).unwrap().is_empty());
        assert!(scores_by_node(body, 2).is_err());
    }

    #[test]
    fn extractor_handles_whitespace_and_exponents() {
        let got = extract_number_array("{ \"scores\" : [ 1e-3 , 2.5, -4 ] }", "scores").unwrap();
        assert_eq!(got, vec![0.001, 2.5, -4.0]);
    }

    #[test]
    fn scalar_extractor_reads_spread_responses() {
        let body = "{\"spread\":3.25,\"trials\":200,\"seed\":0,\"n_nodes\":96}";
        assert_eq!(extract_number(body, "spread").unwrap(), 3.25);
        assert_eq!(extract_number(body, "n_nodes").unwrap(), 96.0);
        let spaced = "{ \"spread\" : 1.5 }";
        assert_eq!(extract_number(spaced, "spread").unwrap(), 1.5);
    }

    #[test]
    fn scalar_extractor_rejects_missing_and_malformed_fields() {
        assert!(extract_number("{}", "spread")
            .unwrap_err()
            .contains("no \"spread\""));
        assert!(extract_number("{\"spread\":[1]}", "spread").is_err());
        assert!(extract_number("{\"spread\":oops}", "spread").is_err());
    }
}
