//! ROC utilities for score-thresholding attacks.
//!
//! The attacks in this crate all reduce to the same statistical
//! question: given one score per example and a binary ground truth
//! (member / non-member, edge / non-edge), how well does thresholding
//! the score separate the two classes? The two summary numbers the
//! privacy-auditing literature reports are the ROC AUC and the true
//! positive rate at a low false positive rate — the latter because an
//! attack that is only right "on average" but never confidently is not
//! a practical privacy violation.
//!
//! AUC is computed by the Mann–Whitney U statistic with average-rank
//! tie handling, which is exact (no trapezoid discretization) and
//! `O(n log n)`.

/// ROC AUC of `positives` vs `negatives` where larger scores are
/// supposed to indicate the positive class.
///
/// Equivalent to the probability that a uniformly random positive
/// outscores a uniformly random negative, with ties counting one half.
/// Returns 0.5 when either class is empty (no evidence either way).
pub fn auc(positives: &[f64], negatives: &[f64]) -> f64 {
    let n_pos = positives.len();
    let n_neg = negatives.len();
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Pool scores, sort ascending, and assign average ranks to ties.
    let mut pooled: Vec<(f64, bool)> = positives
        .iter()
        .map(|&s| (s, true))
        .chain(negatives.iter().map(|&s| (s, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j < pooled.len() && pooled[j].0.total_cmp(&pooled[i].0).is_eq() {
            j += 1;
        }
        // Ranks are 1-based; a tie group spanning ranks i+1..=j gets the
        // group's average rank.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        let ties_pos = pooled[i..j].iter().filter(|(_, p)| *p).count();
        rank_sum_pos += avg_rank * ties_pos as f64;
        i = j;
    }

    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Maximum true positive rate achievable at false positive rate
/// `<= max_fpr`, over all thresholds of the form "predict positive when
/// score >= t".
///
/// Sweeps every distinct pooled score as a candidate threshold plus the
/// degenerate "predict nothing" threshold (TPR 0 at FPR 0), so the
/// result is exact for the empirical distributions. Returns 0.0 when
/// either class is empty.
pub fn tpr_at_fpr(positives: &[f64], negatives: &[f64], max_fpr: f64) -> f64 {
    let n_pos = positives.len();
    let n_neg = negatives.len();
    if n_pos == 0 || n_neg == 0 {
        return 0.0;
    }
    let mut pos = positives.to_vec();
    let mut neg = negatives.to_vec();
    pos.sort_by(|a, b| a.total_cmp(b));
    neg.sort_by(|a, b| a.total_cmp(b));

    // Candidate thresholds: each distinct score. Counting "how many
    // >= t" via partition point on the sorted arrays keeps this
    // O(n log n) overall.
    let mut thresholds: Vec<f64> = pos.iter().chain(neg.iter()).copied().collect();
    thresholds.sort_by(|a, b| a.total_cmp(b));
    thresholds.dedup_by(|a, b| a.total_cmp(b).is_eq());

    let count_ge = |sorted: &[f64], t: f64| -> usize {
        sorted.len() - sorted.partition_point(|&s| s.total_cmp(&t).is_lt())
    };

    let mut best = 0.0f64; // "predict nothing": TPR 0 at FPR 0.
    for &t in &thresholds {
        let fpr = count_ge(&neg, t) as f64 / n_neg as f64;
        if fpr <= max_fpr {
            let tpr = count_ge(&pos, t) as f64 / n_pos as f64;
            best = best.max(tpr);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separated_scores_give_auc_one() {
        let pos = [3.0, 4.0, 5.0];
        let neg = [0.0, 1.0, 2.0];
        assert_eq!(auc(&pos, &neg), 1.0);
        assert_eq!(auc(&neg, &pos), 0.0);
    }

    #[test]
    fn identical_distributions_give_auc_half() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(auc(&a, &a), 0.5);
        // All-ties: every comparison is a coin flip.
        assert_eq!(auc(&[7.0; 5], &[7.0; 9]), 0.5);
    }

    #[test]
    fn auc_matches_hand_computed_mixed_case() {
        // Pairs: (3,1) win, (3,2) win, (1,1) tie, (1,2) loss ->
        // (2 + 0.5) / 4 = 0.625.
        let pos = [3.0, 1.0];
        let neg = [1.0, 2.0];
        assert_eq!(auc(&pos, &neg), 0.625);
    }

    #[test]
    fn empty_classes_are_chance() {
        assert_eq!(auc(&[], &[1.0]), 0.5);
        assert_eq!(auc(&[1.0], &[]), 0.5);
        assert_eq!(tpr_at_fpr(&[], &[1.0], 0.1), 0.0);
    }

    #[test]
    fn tpr_at_low_fpr_matches_hand_computed_case() {
        let pos = [0.9, 0.8, 0.7, 0.2];
        let neg = [0.75, 0.3, 0.2, 0.1, 0.05];
        // At FPR 0 the best threshold is t = 0.8 (no negative >= 0.8):
        // TPR = 2/4.
        assert_eq!(tpr_at_fpr(&pos, &neg, 0.0), 0.5);
        // Allowing one false positive (FPR 0.2) admits t = 0.7:
        // TPR = 3/4.
        assert_eq!(tpr_at_fpr(&pos, &neg, 0.2), 0.75);
        // FPR 1.0 admits everything.
        assert_eq!(tpr_at_fpr(&pos, &neg, 1.0), 1.0);
    }

    #[test]
    fn tpr_never_exceeds_one_and_is_monotone_in_fpr_budget() {
        let pos = [0.1, 0.4, 0.6, 0.61, 0.9];
        let neg = [0.0, 0.2, 0.5, 0.6, 0.8];
        let mut last = 0.0;
        for fpr in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let t = tpr_at_fpr(&pos, &neg, fpr);
            assert!((0.0..=1.0).contains(&t));
            assert!(t >= last, "TPR must be monotone in the FPR budget");
            last = t;
        }
    }
}
