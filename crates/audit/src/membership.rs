//! Node membership inference.
//!
//! The attack from the node-DP literature adapted to this pipeline: the
//! model is trained on subgraphs rooted at the *training* split, so if
//! it leaks, its per-node seed probabilities should look systematically
//! different on training nodes than on held-out nodes. The adversary
//! thresholds the per-node score and is free to pick the direction
//! (train-nodes-score-higher or train-nodes-score-lower), so the
//! reported AUC is directional: `max(a, 1 - a)`. An AUC near 0.5 means
//! the split is statistically invisible in the model's outputs — which
//! is what a tight ε is supposed to buy.

use privim_graph::NodeId;

use crate::roc;

/// Summary of one membership-inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipOutcome {
    /// Directional ROC AUC in `[0.5, 1.0]`: `max(a, 1 - a)` where `a`
    /// treats training nodes as the positive class.
    pub attack_auc: f64,
    /// True positive rate at the configured low false positive rate,
    /// measured in the calibrated direction.
    pub tpr_at_low_fpr: f64,
    /// Whether the adversary flipped the score direction (held-out
    /// nodes scored *higher* than training nodes).
    pub flipped: bool,
    /// Number of training (member) nodes scored.
    pub num_members: usize,
    /// Number of held-out (non-member) nodes scored.
    pub num_non_members: usize,
}

/// Runs the thresholding attack on per-node `scores` (indexed by node
/// id) against the known train/test partition.
///
/// # Panics
///
/// Panics if any node id in the split is out of range for `scores`.
pub fn membership_attack(
    scores: &[f64],
    train: &[NodeId],
    test: &[NodeId],
    low_fpr: f64,
) -> MembershipOutcome {
    let members: Vec<f64> = train.iter().map(|&v| scores[v as usize]).collect();
    let non_members: Vec<f64> = test.iter().map(|&v| scores[v as usize]).collect();

    let raw = roc::auc(&members, &non_members);
    let flipped = raw < 0.5;
    let attack_auc = if flipped { 1.0 - raw } else { raw };
    // TPR is measured in the direction the adversary actually uses.
    let tpr_at_low_fpr = if flipped {
        let neg_members: Vec<f64> = members.iter().map(|s| -s).collect();
        let neg_non: Vec<f64> = non_members.iter().map(|s| -s).collect();
        roc::tpr_at_fpr(&neg_members, &neg_non, low_fpr)
    } else {
        roc::tpr_at_fpr(&members, &non_members, low_fpr)
    };

    privim_obs::counter("audit.membership_runs").add(1);
    MembershipOutcome {
        attack_auc,
        tpr_at_low_fpr,
        flipped,
        num_members: members.len(),
        num_non_members: non_members.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_scores_are_caught() {
        // Members 4..8 score strictly higher than non-members 0..4.
        let scores = [0.1, 0.2, 0.15, 0.12, 0.9, 0.8, 0.85, 0.95];
        let out = membership_attack(&scores, &[4, 5, 6, 7], &[0, 1, 2, 3], 0.1);
        assert_eq!(out.attack_auc, 1.0);
        assert_eq!(out.tpr_at_low_fpr, 1.0);
        assert!(!out.flipped);
        assert_eq!(out.num_members, 4);
        assert_eq!(out.num_non_members, 4);
    }

    #[test]
    fn direction_is_the_adversarys_choice() {
        // Members score strictly LOWER: a naive AUC would be 0.0, but
        // the adversary just flips the sign of the statistic.
        let scores = [0.9, 0.8, 0.85, 0.95, 0.1, 0.2, 0.15, 0.12];
        let out = membership_attack(&scores, &[4, 5, 6, 7], &[0, 1, 2, 3], 0.1);
        assert_eq!(out.attack_auc, 1.0);
        assert_eq!(out.tpr_at_low_fpr, 1.0);
        assert!(out.flipped);
    }

    #[test]
    fn indistinguishable_scores_are_chance() {
        let scores = [0.5; 10];
        let out = membership_attack(&scores, &[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9], 0.1);
        assert_eq!(out.attack_auc, 0.5);
        assert!(!out.flipped);
    }

    #[test]
    fn directional_auc_never_goes_below_half() {
        let scores = [0.3, 0.7, 0.1, 0.9, 0.5, 0.2];
        for (train, test) in [
            (vec![0, 1, 2], vec![3, 4, 5]),
            (vec![3, 4, 5], vec![0, 1, 2]),
            (vec![0, 3], vec![1, 2, 4, 5]),
        ] {
            let out = membership_attack(&scores, &train, &test, 0.1);
            assert!(out.attack_auc >= 0.5);
            assert!(out.attack_auc <= 1.0);
        }
    }
}
