//! Empirical privacy auditing for trained PrivIM checkpoints.
//!
//! The accountant proves an (ε, δ) upper bound; this crate measures the
//! lower bound — what a concrete adversary actually extracts from the
//! trained model. Two attacks, each runnable white-box (direct
//! checkpoint + graph access) and black-box (only `POST /v1/seeds` and
//! `POST /v1/spread` against a live `privim-serve`):
//!
//! * [`membership`] — node membership inference: does thresholding the
//!   model's per-node score distinguish training-split nodes from
//!   held-out nodes? Reported as directional ROC AUC and TPR at a low
//!   FPR.
//! * [`topology`] — edge reconstruction: do output similarities reveal
//!   which node pairs are edges? Reported as precision at `|E|`.
//!
//! [`run_audit`] sweeps a list of checkpoint directories (typically the
//! same run at several ε budgets), labels every row with the ledger's
//! cumulative ε and the model digest, and everything downstream of the
//! seed is deterministic: same seed, same graph, same checkpoints —
//! byte-identical [`render_envelope`] output.

pub mod blackbox;
pub mod membership;
pub mod roc;
pub mod topology;

use std::fmt::Write as _;
use std::path::Path;

use privim_core::checkpoint::{CheckpointStore, TrainCheckpoint};
use privim_datasets::NodeSplit;
use privim_graph::Graph;
use privim_nn::graph_tensors::GraphTensors;
use privim_obs::fault::splitmix64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which attack(s) to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    Membership,
    Topology,
    Both,
}

impl Attack {
    fn membership(self) -> bool {
        matches!(self, Attack::Membership | Attack::Both)
    }

    fn topology(self) -> bool {
        matches!(self, Attack::Topology | Attack::Both)
    }
}

/// Adversary access level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    WhiteBox,
    BlackBox,
    Both,
}

impl Mode {
    fn white_box(self) -> bool {
        matches!(self, Mode::WhiteBox | Mode::Both)
    }

    fn black_box(self) -> bool {
        matches!(self, Mode::BlackBox | Mode::Both)
    }
}

/// Edge/non-edge pairs per class probed through `/v1/spread` in
/// black-box topology audits. Small on purpose: each pair costs up to
/// three HTTP round trips.
const SPREAD_PROBE_PAIRS: usize = 16;

/// Attack harness configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    pub attack: Attack,
    pub mode: Mode,
    /// Master seed: derives the topology candidate sampling stream and
    /// the run trace id.
    pub seed: u64,
    /// FPR budget for the membership TPR-at-low-FPR metric.
    pub low_fpr: f64,
    /// Cap on the topology candidate pair universe.
    pub max_pairs: usize,
    /// `host:port` of a live server; required for black-box modes.
    pub addr: Option<String>,
}

/// One attack × mode × checkpoint result, ready for the envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRow {
    /// `"membership"` or `"topology"`.
    pub attack: &'static str,
    /// `"white_box"` or `"black_box"`.
    pub mode: &'static str,
    /// The checkpoint directory's basename.
    pub label: String,
    /// Stable model parameter digest ([`privim_nn::serialize::Checkpoint::digest_hex`]).
    pub digest: String,
    /// The ledger's cumulative ε (None for non-private checkpoints).
    pub epsilon: Option<f64>,
    /// Ordered numeric metrics, rendered in this order.
    pub metrics: Vec<(&'static str, f64)>,
}

/// White-box per-node scores: restore the model and run inference on
/// the full graph, exactly as `privim-serve` does at load time.
pub fn whitebox_scores(g: &Graph, tc: &TrainCheckpoint) -> Result<Vec<f64>, String> {
    let model = tc
        .model
        .restore()
        .map_err(|e| format!("cannot restore model: {e}"))?;
    let gt = GraphTensors::with_structural_features(g, tc.model.in_dim);
    Ok(model.seed_probabilities(&gt))
}

/// Reconstructs the train/test partition the checkpoint was trained
/// under from its persisted split provenance.
pub fn reconstruct_split(g: &Graph, tc: &TrainCheckpoint) -> Result<NodeSplit, String> {
    let prov = tc.split.ok_or_else(|| {
        "checkpoint has no split provenance (format v2, written by an older build); \
         retrain to make it auditable"
            .to_string()
    })?;
    let mut rng = StdRng::seed_from_u64(prov.split_seed);
    Ok(NodeSplit::random(g, prov.train_fraction, &mut rng))
}

/// Runs the configured attacks against one score vector.
///
/// `pair_seed` pins the topology candidate universe; callers pass the
/// same value for every checkpoint and mode so precision numbers in a
/// sweep are measured on the same universe.
pub fn attack_rows(
    scores: &[f64],
    g: &Graph,
    split: &NodeSplit,
    mode_name: &'static str,
    label: &str,
    digest: &str,
    epsilon: Option<f64>,
    cfg: &AuditConfig,
    pair_seed: u64,
) -> Vec<AuditRow> {
    let mut rows = Vec::new();
    if cfg.attack.membership() {
        let m = membership::membership_attack(scores, &split.train, &split.test, cfg.low_fpr);
        rows.push(AuditRow {
            attack: "membership",
            mode: mode_name,
            label: label.to_string(),
            digest: digest.to_string(),
            epsilon,
            metrics: vec![
                ("attack_auc", m.attack_auc),
                ("tpr_at_low_fpr", m.tpr_at_low_fpr),
                ("flipped", if m.flipped { 1.0 } else { 0.0 }),
                ("num_members", m.num_members as f64),
                ("num_non_members", m.num_non_members as f64),
            ],
        });
    }
    if cfg.attack.topology() {
        let t = topology::topology_attack(scores, g, cfg.max_pairs, pair_seed);
        rows.push(AuditRow {
            attack: "topology",
            mode: mode_name,
            label: label.to_string(),
            digest: digest.to_string(),
            epsilon,
            metrics: vec![
                ("precision_at_e", t.precision_at_e),
                ("num_candidates", t.num_candidates as f64),
                ("num_true_edges", t.num_true_edges as f64),
            ],
        });
    }
    rows
}

/// Sweeps the checkpoint directories and runs every configured
/// attack × mode combination, in input order.
///
/// Each directory is resolved through [`CheckpointStore::load_latest_valid`],
/// so the audited artifact is exactly the checkpoint a resumed run
/// would continue from.
pub fn run_audit(g: &Graph, dirs: &[String], cfg: &AuditConfig) -> Result<Vec<AuditRow>, String> {
    if cfg.mode.black_box() && cfg.addr.is_none() {
        return Err("black-box audits need a server address".into());
    }
    // Run-scoped trace derived from the seed alone, mirroring training:
    // audit telemetry for seed s correlates with nothing else.
    let ctx = privim_obs::TraceContext::from_seed(cfg.seed);
    privim_obs::trace::set_run_trace(ctx);
    let _trace = ctx.enter();
    let span = privim_obs::span!("audit");
    // One candidate universe for the whole sweep (see `attack_rows`).
    let pair_seed = splitmix64(cfg.seed);

    let mut rows = Vec::new();
    for dir in dirs {
        // The store creates missing directories; an audit must not.
        if !Path::new(dir).is_dir() {
            return Err(format!("checkpoint dir {dir} does not exist"));
        }
        let store = CheckpointStore::open(dir, usize::MAX)
            .map_err(|e| format!("cannot open checkpoint dir {dir}: {e}"))?;
        let (tc, _path) = store
            .load_latest_valid()
            .map_err(|e| format!("cannot load checkpoint from {dir}: {e}"))?
            .ok_or_else(|| format!("no valid checkpoint in {dir}"))?;
        privim_obs::counter("audit.checkpoints").add(1);

        let label = Path::new(dir)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dir.clone());
        let digest = tc.model.digest_hex();
        let epsilon = tc.ledger.as_ref().and_then(|l| l.cumulative_epsilon());
        let split = reconstruct_split(g, &tc)?;

        if cfg.mode.white_box() {
            let scores = whitebox_scores(g, &tc)?;
            rows.extend(attack_rows(
                &scores,
                g,
                &split,
                "white_box",
                &label,
                &digest,
                epsilon,
                cfg,
                pair_seed,
            ));
        }
        if cfg.mode.black_box() {
            let addr = cfg.addr.as_deref().expect("checked above");
            let scores = blackbox::fetch_scores(addr, g.num_nodes())?;
            let mut bb_rows = attack_rows(
                &scores,
                g,
                &split,
                "black_box",
                &label,
                &digest,
                epsilon,
                cfg,
                pair_seed,
            );
            // Black-box topology gets the /v1/spread overlap probe as a
            // second signal: influence overlap is a channel only a live
            // server exposes (see `blackbox::influence_overlap_probe`).
            if cfg.attack.topology() {
                let probe =
                    blackbox::influence_overlap_probe(addr, g, SPREAD_PROBE_PAIRS, pair_seed)?;
                if let Some(row) = bb_rows.iter_mut().find(|r| r.attack == "topology") {
                    row.metrics.push(("spread_probe_auc", probe.probe_auc));
                    row.metrics
                        .push(("num_spread_probes", probe.num_probes as f64));
                }
            }
            rows.extend(bb_rows);
        }
    }
    span.finish();
    Ok(rows)
}

// ---------------------------------------------------------------------------
// JSON envelope (hand-rolled: field order and formatting must be stable
// so that equal runs are byte-identical, matching kernelbench)
// ---------------------------------------------------------------------------

/// Formats an f64 the way the bench envelopes do: integral values get a
/// trailing `.0` so the type survives a JSON round trip.
pub fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

/// Renders the standard `{seed, rows, telemetry}` envelope consumed by
/// `bench_diff`.
pub fn render_envelope(
    seed: u64,
    rows: &[AuditRow],
    counters: &std::collections::BTreeMap<String, u64>,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mut fields = vec![
            format!("\"attack\": \"{}\"", r.attack),
            format!("\"mode\": \"{}\"", r.mode),
            format!("\"label\": \"{}\"", r.label),
            format!("\"digest\": \"{}\"", r.digest),
        ];
        if let Some(eps) = r.epsilon {
            fields.push(format!("\"epsilon\": {}", json_f64(eps)));
        }
        for (name, value) in &r.metrics {
            fields.push(format!("\"{name}\": {}", json_f64(*value)));
        }
        out.push_str("    {\n");
        for (j, f) in fields.iter().enumerate() {
            let comma = if j + 1 < fields.len() { "," } else { "" };
            let _ = writeln!(out, "      {f}{comma}");
        }
        out.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    // Telemetry: counters only; histograms are wall-clock-derived and
    // would break bit-identity.
    out.push_str("  \"telemetry\": {\n    \"counters\": {\n");
    let n = counters.len();
    for (i, (k, v)) in counters.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(out, "      \"{k}\": {v}{comma}");
    }
    out.push_str("    }\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_core::checkpoint::SplitProvenance;
    use privim_graph::GraphBuilder;
    use privim_nn::models::{build_model, ModelKind};
    use privim_nn::optim::{Adam, Optimizer};
    use privim_nn::params::GradVec;
    use privim_nn::serialize::Checkpoint as ModelCheckpoint;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            b.add_edge(i as u32, j as u32, 0.4);
            b.add_edge(j as u32, i as u32, 0.4);
        }
        b.build()
    }

    fn sample_checkpoint() -> TrainCheckpoint {
        let mut rng = StdRng::seed_from_u64(0xA0D17);
        let model = build_model(ModelKind::Gcn, 4, 8, 2, &mut rng);
        let mut adam = Adam::new(0.01);
        let mut params = model.params().clone();
        let grad = GradVec::zeros_like(&params);
        adam.step(&mut params, &grad);
        TrainCheckpoint {
            epoch: 3,
            master_seed: 42,
            config_crc: 0,
            trace_id: 0,
            model: ModelCheckpoint::capture(model.as_ref(), 4, 8, 2),
            optimizer: adam.snapshot(),
            ledger: None,
            losses: vec![0.8, 0.6, 0.5],
            clip_fractions: vec![],
            split: Some(SplitProvenance {
                split_seed: 42,
                train_fraction: 0.5,
            }),
        }
    }

    fn config() -> AuditConfig {
        AuditConfig {
            attack: Attack::Both,
            mode: Mode::WhiteBox,
            seed: 42,
            low_fpr: 0.1,
            max_pairs: 10_000,
            addr: None,
        }
    }

    #[test]
    fn whitebox_audit_sweeps_a_real_checkpoint_store_deterministically() {
        let dir = std::env::temp_dir().join("privim-audit-sweep");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(&sample_checkpoint()).unwrap();

        let g = ring(12);
        let dirs = vec![dir.to_string_lossy().into_owned()];
        let rows = run_audit(&g, &dirs, &config()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].attack, "membership");
        assert_eq!(rows[1].attack, "topology");
        for r in &rows {
            assert_eq!(r.mode, "white_box");
            assert_eq!(r.label, "privim-audit-sweep");
            assert_eq!(r.digest.len(), 16);
            assert_eq!(r.epsilon, None);
        }
        let auc = rows[0].metrics[0];
        assert_eq!(auc.0, "attack_auc");
        assert!((0.5..=1.0).contains(&auc.1));

        // Same seed, same inputs: identical rows.
        let again = run_audit(&g, &dirs, &config()).unwrap();
        assert_eq!(rows, again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_without_provenance_are_rejected_with_a_clear_error() {
        let g = ring(6);
        let mut tc = sample_checkpoint();
        tc.split = None;
        let err = reconstruct_split(&g, &tc).unwrap_err();
        assert!(err.contains("split provenance"), "{err}");
    }

    #[test]
    fn black_box_mode_without_an_address_is_rejected() {
        let g = ring(6);
        let cfg = AuditConfig {
            mode: Mode::BlackBox,
            ..config()
        };
        let err = run_audit(&g, &[], &cfg).unwrap_err();
        assert!(err.contains("server address"), "{err}");
    }

    #[test]
    fn envelope_is_byte_stable_and_orders_fields() {
        let rows = vec![AuditRow {
            attack: "membership",
            mode: "white_box",
            label: "eps8".into(),
            digest: "00ff00ff00ff00ff".into(),
            epsilon: Some(8.0),
            metrics: vec![("attack_auc", 0.75), ("tpr_at_low_fpr", 0.25)],
        }];
        let counters = std::collections::BTreeMap::from([("audit.checkpoints".to_string(), 1u64)]);
        let a = render_envelope(7, &rows, &counters);
        let b = render_envelope(7, &rows, &counters);
        assert_eq!(a, b);
        assert!(a.contains("\"seed\": 7,"));
        assert!(a.contains("\"epsilon\": 8.0"));
        assert!(a.contains("\"attack_auc\": 0.75"));
        assert!(a.contains("\"audit.checkpoints\": 1"));
        // No trailing comma before the closing brace of a row.
        assert!(!a.contains(",\n    }"));
    }

    #[test]
    fn envelope_with_no_rows_is_valid() {
        let counters = std::collections::BTreeMap::new();
        let out = render_envelope(1, &[], &counters);
        assert!(out.contains("\"rows\": [\n  ],"));
    }
}
